#include "depgraph/executor.hh"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/bitmap.hh"
#include "common/trace.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "depgraph/engine_model.hh"
#include "graph/core_paths.hh"
#include "graph/partition.hh"
#include "runtime/layout.hh"
#include "runtime/selective.hh"

namespace depgraph::dep
{

using gas::applyAccum;
using gas::wouldChange;

namespace
{

/** Core-path tracking state carried along a traversal (Sec. III-B2:
 * identifying core-paths on the fly and feeding DDMU). */
struct Track
{
    std::uint32_t pathIdx = kNone;
    std::uint32_t pos = 0;   ///< edges of the path already walked
    Value basisIn = 0.0;     ///< head delta the samples are based on
    Value xPure = 0.0;       ///< pure influence composed so far
    gas::LinearFunc composed{1.0, 0.0, kInfinity};
    Value shortcutFired = 0.0; ///< influence already sent to the tail
    bool hasShortcut = false;

    static constexpr std::uint32_t kNone = 0xffffffffu;
    bool valid() const { return pathIdx != kNone; }
};

/** One HDTL stack frame: a vertex being expanded plus its edge cursor
 * (paper Fig. 7: vertex id, current/end offsets). */
struct Frame
{
    VertexId v;
    EdgeId cur;
    EdgeId end;
    Value d; ///< the delta this vertex applied on entry
    Track track;
};

} // namespace

DepGraphExecutor::DepGraphExecutor(DepOptions dep,
                                   runtime::EngineOptions opt)
    : dep_(dep), opt_(opt)
{}

std::string
DepGraphExecutor::name() const
{
    if (dep_.mode == Mode::Software)
        return "DepGraph-S";
    return dep_.hubIndexEnabled ? "DepGraph-H" : "DepGraph-H-w";
}

runtime::RunResult
DepGraphExecutor::run(const graph::Graph &g, gas::Algorithm &alg,
                      sim::Machine &m)
{
    alg.prepare(g);
    m.flushCaches();
    m.clearStats();

    const auto &P = m.params();
    const unsigned cores = std::min(opt_.numCores, m.numCores());
    const bool hw = dep_.mode == Mode::Hardware;

    runtime::GraphLayout L(m, g);
    const graph::Partitioning part(g, cores);
    const VertexId n = g.numVertices();
    const auto kind = alg.accumKind();
    const Value ident = alg.identity();
    const Value eps = alg.epsilon();
    const bool is_sum = kind == gas::AccumKind::Sum;

    /* ---- Preprocessing (software side, Sec. III-B): find hubs,
     * core-vertices and disjoint core-paths; build the H'' bitmap. ---- */
    const graph::HubSet hubs(g, opt_.hub);
    const graph::CoreSubgraph cs(g, hubs, 4 * opt_.stackDepth, &part);
    // First-edge -> core-path map used to recognize path starts. Only
    // paths whose tail lives on ANOTHER core are indexed: a local tail
    // receives the chain influence within the same traversal, so its
    // direct dependency would never be consulted -- the useful
    // shortcuts are exactly the cross-partition ones (Fig. 5c).
    std::unordered_map<EdgeId, std::uint32_t> path_of_first_edge;
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(cs.paths().size()); ++i) {
        const auto &p = cs.paths()[i];
        // Entries are kept for core-paths that (a) end on another
        // core -- a local tail receives the chain influence within the
        // same traversal anyway, so only cross-core dependencies are
        // ever consulted -- and (b), for sum accumulators, span >= 3
        // edges: shorter ones cost more in fictitious-edge resets than
        // they save. Note the absolute storage share of the index at
        // reproduction scale is larger than the paper's 0.9-2.8%
        // because the 32 B entry size is constant while the scaled
        // graphs are ~1000x smaller (see EXPERIMENTS.md).
        const std::size_t min_len =
            kind == gas::AccumKind::Sum ? 3 : 1;
        if (p.edges.size() >= min_len
            && part.ownerOf(p.tail) != part.ownerOf(p.head))
            path_of_first_edge.emplace(p.edges[0], i);
    }

    // Decide the DDMU fitting mode: TwoPoint is exact for purely
    // linear EdgeCompute; capped-linear algorithms (SSWP) need Compose
    // to avoid over-estimating shortcuts under a max accumulator.
    FitMode fit = FitMode::TwoPoint;
    if (dep_.fitMode) {
        fit = *dep_.fitMode;
    } else if (kind != gas::AccumKind::Sum) {
        // Min/max accumulators rarely present two distinguishable
        // inputs for the same head (distances/labels settle quickly),
        // so the two-point protocol would keep entries Initialized
        // forever; composing the per-edge functions during the first
        // walk fits the identical direct dependency in one shot. This
        // also handles capped-linear EdgeCompute (SSWP) exactly.
        fit = FitMode::Compose;
    }

    /* ---- Simulated-memory structures. ---- */
    HubIndex index(m, hubs.numHubs() + cs.numCoreVertices(),
                   2 * cs.paths().size() + 64);
    Ddmu ddmu(index);
    const Addr hpp_bitmap = m.mem().alloc("dep.hpp_bitmap",
                                          (n + 7) / 8);
    std::vector<Addr> queue_base(cores);
    for (unsigned c = 0; c < cores; ++c) {
        queue_base[c] = m.mem().alloc(
            "dep.queue." + std::to_string(c),
            std::max<std::size_t>(256, part.range(c).size()) * 4);
    }
    // The hub index is hot data: tell GRASP-managed L3 banks.
    m.hotRegions().clear();
    m.hotRegions().addRange(index.hashAddr(0), index.byteSize());

    runtime::RunResult result;
    auto &mx = result.metrics;
    mx.coresUsed = cores;

    /* ---- Registry counters mirroring the dg_trace taxonomy. The
     * references are resolved once per run (registration takes the
     * registry mutex); the per-event cost is one relaxed add. ---- */
    auto &reg = obs::registry();
    const obs::Labels engine_labels{{"engine", name()}};
    auto &c_walks = reg.counter("dg_engine_chain_walks_total",
                                "HDTL chain walks (root traversals)",
                                engine_labels);
    auto &c_shortcuts = reg.counter("dg_engine_shortcuts_total",
                                    "Hub-index shortcut firings",
                                    engine_labels);
    auto &c_ddmu = reg.counter("dg_engine_ddmu_observations_total",
                               "DDMU dependency-fit observations",
                               engine_labels);
    auto &c_rounds = reg.counter("dg_engine_rounds_total",
                                 "Engine rounds executed",
                                 engine_labels);

    /* ---- Hub-index warm start. A dependency learned by a previous
     * run is installed as an Available entry only when its full
     * head..tail vertex sequence reappears verbatim among THIS run's
     * indexed core-paths: per-edge functions depend only on the
     * source's out-edge set, so an untouched path composes to the
     * identical function and the seeded entry equals what this run
     * would eventually fit itself. Anything else (path re-cut, vertex
     * churned away, partition moved) simply fails to match and gets
     * re-learned from scratch. ---- */
    if (dep_.hubIndexEnabled && alg.transformable() && opt_.hubSeed
        && !opt_.hubSeed->empty()) {
        std::unordered_map<VertexId, std::vector<std::uint32_t>>
            paths_by_head;
        for (const auto &[fe, pid] : path_of_first_edge) {
            static_cast<void>(fe);
            paths_by_head[cs.paths()[pid].head].push_back(pid);
        }
        for (const auto &d : opt_.hubSeed->deps) {
            const auto it = paths_by_head.find(d.head);
            if (it == paths_by_head.end())
                continue;
            for (const auto pid : it->second) {
                const auto &p = cs.paths()[pid];
                if (p.tail != d.tail || p.vertices != d.vertices)
                    continue;
                const auto idx =
                    index.findOrCreate(p.head, p.tail, pid);
                auto &en = index.entry(idx);
                if (en.flag != EntryFlag::A) {
                    en.flag = EntryFlag::A;
                    en.func = d.func;
                    ++mx.hubIndexSeeded;
                }
                break;
            }
        }
    }

    /* ---- Functional state. ---- */
    Value gate = eps; // Maiter-style selective gate (sum only)
    std::vector<Value> state(n), delta(n), shadow(n, ident);
    for (VertexId v = 0; v < n; ++v) {
        state[v] = alg.initState(g, v);
        delta[v] = alg.initDelta(g, v);
    }

    std::vector<CorePipeline> pl;
    pl.reserve(cores);
    for (unsigned c = 0; c < cores; ++c)
        pl.emplace_back(opt_.fifoCapacity, hw);

    /* ---- Charging helpers. ---- */
    unsigned cur_core = 0;
    auto engineAccess = [&](Addr a, unsigned bytes, bool write) {
        // HDTL/DDMU accesses go through the L2 (Sec. III-B). In
        // software mode the core itself performs them.
        if (hw)
            return m.accessFromL2(cur_core, a, bytes, write).latency;
        return m.access(cur_core, a, bytes, write).latency;
    };
    auto coreAccess = [&](Addr a, unsigned bytes, bool write) {
        const auto r = m.access(cur_core, a, bytes, write);
        pl[cur_core].coreBusy(r.latency);
        mx.memStallCycles += r.latency;
    };
    auto coreCompute = [&](Cycles cyc) {
        pl[cur_core].coreBusy(cyc);
        mx.computeCycles += cyc;
    };

    auto queueOp = [&](Addr qaddr, bool write) {
        const Cycles lat = engineAccess(qaddr, 4, write);
        if (hw) {
            pl[cur_core].engineBusy(lat + 1);
            ++mx.accelOps;
        } else {
            pl[cur_core].coreBusy(lat + P.queueOpCycles);
            mx.memStallCycles += lat;
            mx.overheadCycles += P.queueOpCycles;
        }
    };
    auto ddmuAccessCost = [&](VertexId head, std::uint32_t entry_idx,
                              bool write) {
        Cycles lat = engineAccess(index.hashAddr(head), 16, false);
        lat += engineAccess(
            index.entryAddr(entry_idx == HubIndex::kNoEntry
                                ? 0 : entry_idx),
            32, write);
        if (hw) {
            pl[cur_core].engineBusy(lat + P.hwHubIndexCycles);
            ++mx.accelOps;
        } else {
            pl[cur_core].coreBusy(lat + P.swHubIndexCycles);
            mx.memStallCycles += lat;
            mx.overheadCycles += P.swHubIndexCycles;
        }
    };

    /* ---- Queues, activation. ----
     *
     * DepGraph's cross-core activations are explicit messages: the
     * engine "inserts the tail vertex into the local circular queues
     * of all cores that own a partition with it" (Sec. III-B2). A
     * queue entry therefore carries the time it becomes visible to
     * the receiving core; remote deliveries land directly in the
     * target's pending delta (the handoff is explicit, not a stale
     * rescan) and are processed within the same round. */
    struct QEntry
    {
        VertexId v;
        Cycles ready;
    };
    std::vector<std::deque<QEntry>> queue(cores);
    Bitmap inQueue(n);
    auto enqueueAt = [&](unsigned c, VertexId v, Cycles ready) {
        if (!inQueue.testAndSet(v))
            return;
        queue[c].push_back({v, ready});
        queueOp(queue_base[c], true);
    };
    /* Ordinary remote delivery: a plain store another core will only
     * discover at the next round's active scan (no push machinery
     * without the hub index). */
    auto deliverRemote = [&](VertexId t, Value inf) {
        shadow[t] = applyAccum(kind, shadow[t], inf);
    };
    /* Hub-index push: the engine inserts the tail into the owning
     * core's local circular queue (Sec. III-B2), so the influence is
     * consumed within the same round -- this is precisely the cross-
     * core parallelism the direct dependencies unlock (Fig. 5c). */
    auto pushRemote = [&](VertexId t, Value inf) {
        const unsigned owner = part.ownerOf(t);
        delta[t] = applyAccum(kind, delta[t], inf);
        // Any genuine improvement is worth pushing: the message is
        // cheap and it saves the tail's core a full round.
        const bool worth = is_sum
            ? runtime::worthChasing(kind, state[t], delta[t], gate)
            : wouldChange(kind, state[t], delta[t], eps);
        if (worth) {
            const Cycles send = pl[cur_core].coreClock() + 30;
            enqueueAt(owner, t, send);
        }
        if (hw) {
            pl[cur_core].engineBusy(20);
            ++mx.accelOps;
        } else {
            pl[cur_core].coreBusy(20 + P.queueOpCycles);
            mx.overheadCycles += 20 + P.queueOpCycles;
        }
    };

    /* ---- The HDTL traversal. ---- */
    std::vector<std::uint32_t> visitEpoch(n, 0);
    std::uint32_t epoch = 0;
    std::vector<Frame> stack;
    stack.reserve(opt_.stackDepth);

    // A vertex applies its delta at most once per round (as in the
    // baselines); chains still propagate multi-hop within a round
    // because every hop is a first application in dependency order --
    // this realizes Observation one's "least number of updates ...
    // the same as the number of vertices" on a chain.
    Bitmap processedRound(n);

    auto enterVertex = [&](VertexId v) -> Value {
        // Fetch_Offsets (engine) + the core applying the delta.
        const Cycles off_lat = engineAccess(L.offsetAddr(v), 16, false);
        if (hw) {
            pl[cur_core].engineBusy(off_lat);
            ++mx.accelOps;
        } else {
            pl[cur_core].coreBusy(off_lat + P.swTraversalCycles);
            mx.memStallCycles += off_lat;
            mx.overheadCycles += P.swTraversalCycles;
        }
        coreAccess(L.deltaAddr(v), 8, true);
        coreAccess(L.stateAddr(v), 8, true);
        const Value d = delta[v];
        delta[v] = ident;
        state[v] = applyAccum(kind, state[v], d);
        ++mx.updates;
        processedRound.set(v);
        coreCompute(P.vertexOpCycles);
        return d;
    };

    auto traverse = [&](VertexId root) {
        ++epoch;
        const Value d_root = enterVertex(root);
        visitEpoch[root] = epoch;
        const bool root_is_hpp = cs.isHubOrCore(root);
        if (root_is_hpp) {
            // H'' membership check against the in-memory bitmap.
            Cycles lat = engineAccess(hpp_bitmap + root / 8, 1, false);
            // DDMU retrieves mu/xi "for all core-paths originated
            // from this vertex" with one hash probe plus a contiguous
            // read of the entry range (Sec. III-B2); per-path checks
            // during the traversal are then register-speed.
            if (dep_.hubIndexEnabled && alg.transformable()) {
                lat += engineAccess(index.hashAddr(root), 16, false);
                // The entry range is contiguous; the engine streams it
                // at one line per two cycles after the first access.
                const auto &entries = index.entriesOf(root);
                Cycles worst = 0;
                std::size_t lines = 0;
                for (std::size_t i = 0; i < entries.size(); i += 2) {
                    worst = std::max(
                        worst, engineAccess(index.entryAddr(entries[i]),
                                            32, false));
                    ++lines;
                }
                lat += worst + 2 * lines;
            }
            if (hw) {
                pl[cur_core].engineBusy(lat + P.hwHubIndexCycles);
                ++mx.accelOps;
            } else {
                pl[cur_core].coreBusy(lat + P.swHubIndexCycles);
                mx.memStallCycles += lat;
                mx.overheadCycles += P.swHubIndexCycles;
            }
        }

        stack.clear();
        stack.push_back({root, g.edgeBegin(root), g.edgeEnd(root),
                         d_root, Track{}});

        while (!stack.empty()) {
            Frame &f = stack.back();
            if (f.cur == f.end) {
                stack.pop_back();
                continue;
            }
            const EdgeId e = f.cur++;
            const VertexId t = g.target(e);

            /* Fetch_Neighbors + Fetch_States: the engine prefetches
             * the edge and the endpoint's state/delta. */
            Cycles prod = engineAccess(L.targetAddr(e), 4, false);
            if (L.weighted())
                prod = std::max(prod,
                                engineAccess(L.weightAddr(e), 8,
                                             false));
            prod = std::max(prod,
                            engineAccess(L.stateAddr(t), 8, false));
            prod = std::max(prod,
                            engineAccess(L.deltaAddr(t), 8, false));
            if (hw) {
                pl[cur_core].produce(prod + 2);
                ++mx.prefetchedEdges;
                ++mx.accelOps;
            } else {
                pl[cur_core].coreBusy(prod + P.swTraversalCycles);
                mx.memStallCycles += prod;
                mx.overheadCycles += P.swTraversalCycles;
            }

            /* Core consumes the edge: DEP_fetch_edge + EdgeCompute. */
            const Cycles wait = pl[cur_core].consume(
                1 + P.edgeOpCycles);
            mx.memStallCycles += wait;
            mx.computeCycles += 1 + P.edgeOpCycles;
            ++mx.edgeOps;
            const Value inf = alg.edgeCompute(g, f.v, e, f.d);
            coreAccess(L.deltaAddr(t), 8, true);

            /* Core-path tracking. */
            Track child_track;
            const bool hub_on =
                dep_.hubIndexEnabled && alg.transformable();
            if (hub_on && f.v == root && root_is_hpp) {
                auto it = path_of_first_edge.find(e);
                if (it != path_of_first_edge.end()) {
                    const auto &cp = cs.paths()[it->second];
                    child_track.pathIdx = it->second;
                    child_track.pos = 1;
                    child_track.basisIn = d_root;
                    child_track.xPure =
                        alg.edgeCompute(g, f.v, e, d_root);
                    child_track.composed = alg.edgeFunc(g, f.v, e);
                    // Shortcut: deliver the head's influence to the
                    // tail immediately if the dependency is available
                    // (entries were read at Get_Root time). Firing
                    // pays off when the tail lives on another core --
                    // that core then propagates the influence in
                    // parallel with this walk (Fig. 5c); a local tail
                    // receives the chain influence within the same
                    // traversal anyway.
                    if (part.ownerOf(cp.tail) != cur_core) {
                        if (hw)
                            pl[cur_core].engineBusy(1);
                        else
                            pl[cur_core].coreBusy(2);
                        ++mx.hubIndexLookups;
                        const auto x_fit = ddmu.tryShortcut(
                            cp.head, it->second, d_root);
                        if (x_fit) {
                            ++mx.hubIndexHits;
                            ++mx.shortcutsApplied;
                            c_shortcuts.inc();
                            dg_trace(trace::kShortcut, "core ",
                                     cur_core, ": v", cp.head,
                                     " -> v", cp.tail, " f=", *x_fit);
                            obs::span::instant(
                                "engine", "shortcut", "tail",
                                static_cast<std::uint64_t>(cp.tail));
                            pushRemote(cp.tail, *x_fit);
                            if (is_sum) {
                                child_track.shortcutFired = *x_fit;
                                child_track.hasShortcut = true;
                            }
                        }
                    }
                }
            } else if (hub_on && f.track.valid()) {
                const auto &cp = cs.paths()[f.track.pathIdx];
                if (f.track.pos < cp.edges.size()
                    && cp.edges[f.track.pos] == e) {
                    child_track = f.track;
                    ++child_track.pos;
                    child_track.xPure =
                        alg.edgeCompute(g, f.v, e, f.track.xPure);
                    child_track.composed = gas::LinearFunc::compose(
                        alg.edgeFunc(g, f.v, e), f.track.composed);
                }
            }

            /* Tail reached: record the observation with DDMU and emit
             * the fictitious reset edge if the shortcut double-
             * delivered (sum accumulators only). */
            const bool at_tail = child_track.valid()
                && child_track.pos
                    == cs.paths()[child_track.pathIdx].edges.size();
            if (at_tail) {
                const auto &cp = cs.paths()[child_track.pathIdx];
                // Once an entry is Available it is only reused; DDMU
                // does no further fitting work for it (Sec. III-B2).
                const auto existing =
                    index.find(cp.head, child_track.pathIdx);
                const bool settled = existing != HubIndex::kNoEntry
                    && index.entry(existing).flag == EntryFlag::A;
                if (!settled) {
                    c_ddmu.inc();
                    dg_trace(trace::kDdmu, "observe path ",
                             child_track.pathIdx, " head=v", cp.head,
                             " tail=v", cp.tail, " in=",
                             child_track.basisIn, " out=",
                             child_track.xPure);
                    obs::span::instant(
                        "engine", "ddmu_fit", "path",
                        child_track.pathIdx);
                    ddmuAccessCost(cp.head, existing, true);
                    const auto before = index.size();
                    ddmu.observe(cp.head, cp.tail,
                                 child_track.pathIdx,
                                 child_track.basisIn,
                                 child_track.xPure,
                                 child_track.composed, fit);
                    if (index.size() > before)
                        ++mx.hubIndexInserts;
                }
                if (child_track.hasShortcut) {
                    // Fictitious edge <-1, tail, NULL, f(s)>: the core
                    // consumes it and takes the influence away once.
                    // The reset rides with the chain delivery (both
                    // are plain stores) and cancels at the barrier.
                    const Cycles w2 = pl[cur_core].consume(
                        1 + P.edgeOpCycles);
                    mx.memStallCycles += w2;
                    mx.computeCycles += 1 + P.edgeOpCycles;
                    coreAccess(L.deltaAddr(cp.tail), 8, true);
                    deliverRemote(cp.tail,
                                  -child_track.shortcutFired);
                }
                child_track = Track{};
            }

            /* A tracked core-path that terminates before its tail
             * must take back the influence the shortcut already sent
             * (otherwise the tail would keep a copy the in-path
             * propagation never matches). */
            auto cancelShortcut = [&] {
                if (child_track.valid() && child_track.hasShortcut) {
                    deliverRemote(
                        cs.paths()[child_track.pathIdx].tail,
                        -child_track.shortcutFired);
                }
            };

            /* Deliver the influence and decide whether to descend. */
            const unsigned owner = part.ownerOf(t);
            if (owner != cur_core) {
                deliverRemote(t, inf); // discovered at the next round
                cancelShortcut(); // interiors are local by construction
                continue; // remote chains resume on their owner core
            }
            delta[t] = applyAccum(kind, delta[t], inf);
            if (!runtime::worthChasing(kind, state[t], delta[t],
                                       gate)) {
                cancelShortcut();
                continue; // contribution banks until it clears the gate
            }

            if (cs.isHubOrCore(t)) {
                // H'' vertex: cut the traversal, hand t over as a new
                // root (it may start core-paths of its own).
                cancelShortcut();
                enqueueAt(cur_core, t, pl[cur_core].coreClock());
                continue;
            }
            if (visitEpoch[t] == epoch || processedRound.test(t)) {
                // Already expanded in this traversal, or already
                // applied this round: bank the delta for next round.
                cancelShortcut();
                continue;
            }
            if (stack.size() >= opt_.stackDepth) {
                // Stack full: the last prefetched vertex becomes a new
                // root (paper Sec. III-B2).
                cancelShortcut();
                enqueueAt(cur_core, t, pl[cur_core].coreClock());
                continue;
            }
            visitEpoch[t] = epoch;
            const Value d_t = enterVertex(t);
            stack.push_back({t, g.edgeBegin(t), g.edgeEnd(t), d_t,
                             child_track});
        }
    };

    /* ---- Round loop. ---- */
    std::size_t active_total = 0;
    auto seedQueues = [&] {
        inQueue.clearAll();
        active_total = 0;
        for (unsigned c = 0; c < cores; ++c)
            queue[c].clear();
        std::vector<VertexId> actives;
        for (VertexId v = 0; v < n; ++v) {
            if (delta[v] != ident
                && wouldChange(kind, state[v], delta[v], eps)) {
                actives.push_back(v);
                ++active_total;
            }
        }
        gate = runtime::selectionThreshold(kind, eps, delta, actives);
        // Seed each core's queue most-impactful-first (closest first
        // for min accumulators): chains then start from near-final
        // values and re-updates stay rare.
        std::stable_sort(actives.begin(), actives.end(),
            [&](VertexId a, VertexId b) {
                switch (kind) {
                  case gas::AccumKind::Sum:
                    return std::abs(delta[a]) > std::abs(delta[b]);
                  case gas::AccumKind::Min:
                    return delta[a] < delta[b];
                  case gas::AccumKind::Max:
                    return delta[a] > delta[b];
                }
                return false;
            });
        for (auto v : actives) {
            if (runtime::clearsGate(kind, state[v], delta[v], gate)) {
                queue[part.ownerOf(v)].push_back({v, 0});
                inQueue.set(v);
            }
        }
    };
    seedQueues();

    for (mx.rounds = 0; mx.rounds < opt_.maxRounds && active_total > 0;
         ++mx.rounds) {
        // Waves: keep draining queues until no core has work, so
        // cross-core activations sent during the round are consumed in
        // the same round (each vertex still applies at most once per
        // round).
        bool any_work = true;
        while (any_work) {
            any_work = false;
            for (unsigned c = 0; c < cores; ++c) {
                cur_core = c;
                while (!queue[c].empty()) {
                    // Take the first already-visible entry; an
                    // in-flight push must not block work behind it.
                    std::size_t pick = 0;
                    std::size_t earliest = 0;
                    bool found = false;
                    for (std::size_t i = 0; i < queue[c].size(); ++i) {
                        if (queue[c][i].ready <= pl[c].coreClock()) {
                            pick = i;
                            found = true;
                            break;
                        }
                        if (queue[c][i].ready
                            < queue[c][earliest].ready) {
                            earliest = i;
                        }
                    }
                    if (!found)
                        pick = earliest;
                    const QEntry entry = queue[c][pick];
                    queue[c].erase(queue[c].begin()
                                   + static_cast<std::ptrdiff_t>(pick));
                    any_work = true;
                    const VertexId root = entry.v;
                    inQueue.reset(root);
                    // The message is visible only once it arrived.
                    if (entry.ready > pl[c].coreClock()) {
                        mx.idleCycles +=
                            entry.ready - pl[c].coreClock();
                        pl[c].syncTo(entry.ready);
                    }
                    queueOp(queue_base[c], false); // Get_Root stage
                    if (delta[root] == ident
                        || processedRound.test(root)
                        || !runtime::clearsGate(kind, state[root],
                                                delta[root], gate)) {
                        coreCompute(1);
                        continue;
                    }
                    dg_trace(trace::kTraverse, "core ", cur_core,
                             ": root v", root, " delta=",
                             delta[root]);
                    c_walks.inc();
                    if (obs::span::enabled()) {
                        obs::span::Scoped walk("engine", "chain_walk",
                                               "core", cur_core);
                        traverse(root);
                    } else {
                        traverse(root);
                    }
                }
            }
        }

        dg_trace(trace::kEngine, name(), " round ", mx.rounds,
                 " done: updates=", mx.updates);
        c_rounds.inc();
        obs::span::instant("engine", "round_done", "round",
                           mx.rounds);

        /* Barrier: merge remote stores; reseed from banked deltas. */
        processedRound.clearAll();
        for (VertexId v = 0; v < n; ++v) {
            if (shadow[v] != ident) {
                delta[v] = applyAccum(kind, delta[v], shadow[v]);
                shadow[v] = ident;
            }
        }
        seedQueues();

        Cycles bar = 0;
        for (unsigned c = 0; c < cores; ++c)
            bar = std::max(bar, pl[c].coreClock());
        for (unsigned c = 0; c < cores; ++c) {
            mx.idleCycles += bar - pl[c].coreClock();
            pl[c].syncTo(bar);
        }
    }

    mx.converged = active_total == 0;
    if (!mx.converged)
        dg_warn(name(), " hit the round limit before converging");

    Cycles makespan = 0;
    for (unsigned c = 0; c < cores; ++c)
        makespan = std::max(makespan, pl[c].coreClock());
    mx.makespan = makespan;

    const auto &ds = ddmu.stats();
    mx.hubIndexLookups = ds.lookups;
    mx.hubIndexHits = ds.hits;
    mx.hubIndexInserts = ds.inserts;
    mx.hubIndexBytes = index.byteSize();

    /* Export the Available entries in engine-independent form (full
     * vertex sequence per dependency) so a later incremental run can
     * warm-start from them after invalidating whatever a churn batch
     * touched. */
    if (opt_.hubExport) {
        opt_.hubExport->deps.clear();
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(index.size()); ++i) {
            const auto &en = index.entry(i);
            if (en.flag != EntryFlag::A)
                continue;
            const auto &p = cs.paths()[en.pathId];
            opt_.hubExport->deps.push_back(
                {en.head, en.tail, p.vertices, en.func});
        }
    }

    result.states = std::move(state);
    result.memStats = m.stats();
    result.energy = sim::computeEnergy(
        result.memStats, mx.busyCycles(),
        mx.idleCycles
            + static_cast<std::uint64_t>(m.numCores() - cores)
                * mx.makespan,
        mx.accelOps);
    return result;
}

runtime::EnginePtr
makeDepGraphS(runtime::EngineOptions opt)
{
    return std::make_unique<DepGraphExecutor>(
        DepOptions{Mode::Software, true, std::nullopt}, opt);
}

runtime::EnginePtr
makeDepGraphH(runtime::EngineOptions opt)
{
    return std::make_unique<DepGraphExecutor>(
        DepOptions{Mode::Hardware, true, std::nullopt}, opt);
}

runtime::EnginePtr
makeDepGraphHNoHub(runtime::EngineOptions opt)
{
    return std::make_unique<DepGraphExecutor>(
        DepOptions{Mode::Hardware, false, std::nullopt}, opt);
}

} // namespace depgraph::dep
