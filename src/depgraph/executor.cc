#include "depgraph/executor.hh"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/bitmap.hh"
#include "common/trace.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "depgraph/chain_walk.hh"
#include "depgraph/engine_model.hh"
#include "graph/core_paths.hh"
#include "graph/partition.hh"
#include "runtime/layout.hh"
#include "runtime/selective.hh"

namespace depgraph::dep
{

using gas::applyAccum;
using gas::wouldChange;

namespace
{

/** One root-queue entry: the vertex plus the core clock at which the
 * activation message becomes visible to the receiving core. */
struct QEntry
{
    VertexId v;
    Cycles ready;
};

/**
 * The cycle-model implementation of the chain_walk.hh Policy contract.
 *
 * The walk ORDER lives in walkChain() (shared with the native
 * multi-threaded engine); this policy contributes what is specific to
 * the simulated machine: charging the per-core pipelines and the cache
 * hierarchy for every step (Sec. III-B), the simulated root queues,
 * and delivery through the HubIndex/Ddmu structures in simulated
 * memory.
 */
struct SimWalkPolicy
{
    /* Context, bound once per run. */
    const graph::Graph &g;
    gas::Algorithm &alg;
    sim::Machine &m;
    const sim::MachineParams &mp;
    runtime::GraphLayout &L;
    const graph::Partitioning &part;
    const graph::CoreSubgraph &cs;
    HubIndex &index;
    Ddmu &ddmu;
    std::vector<CorePipeline> &pl;
    runtime::RunMetrics &mx;
    obs::Counter &c_shortcuts;
    obs::Counter &c_ddmu;
    const std::unordered_map<EdgeId, std::uint32_t> &pathOfFirst;
    const std::vector<Addr> &queueBase;
    std::vector<std::deque<QEntry>> &queue;
    Bitmap &inQueue;
    std::vector<Value> &state;
    std::vector<Value> &delta;
    std::vector<Value> &shadow;
    std::vector<std::uint32_t> &visitEpoch;
    Bitmap &processedRound;
    const Addr hppBitmap;
    const gas::AccumKind kind;
    const Value ident;
    const Value eps;
    const bool sum;
    const bool hw;
    const bool hubOn;
    const FitMode fit;

    /* Round-varying state. */
    Value gate = 0.0; ///< Maiter-style selective gate (sum only)
    unsigned curCore = 0;
    std::uint32_t epoch = 0;

    /* ---- Charging helpers. ---- */
    Cycles
    engineAccess(Addr a, unsigned bytes, bool write)
    {
        // HDTL/DDMU accesses go through the L2 (Sec. III-B). In
        // software mode the core itself performs them.
        if (hw)
            return m.accessFromL2(curCore, a, bytes, write).latency;
        return m.access(curCore, a, bytes, write).latency;
    }

    void
    coreAccess(Addr a, unsigned bytes, bool write)
    {
        const auto r = m.access(curCore, a, bytes, write);
        pl[curCore].coreBusy(r.latency);
        mx.memStallCycles += r.latency;
    }

    void
    coreCompute(Cycles cyc)
    {
        pl[curCore].coreBusy(cyc);
        mx.computeCycles += cyc;
    }

    void
    queueOp(Addr qaddr, bool write)
    {
        const Cycles lat = engineAccess(qaddr, 4, write);
        if (hw) {
            pl[curCore].engineBusy(lat + 1);
            ++mx.accelOps;
        } else {
            pl[curCore].coreBusy(lat + mp.queueOpCycles);
            mx.memStallCycles += lat;
            mx.overheadCycles += mp.queueOpCycles;
        }
    }

    void
    ddmuAccessCost(VertexId head, std::uint32_t entry_idx, bool write)
    {
        Cycles lat = engineAccess(index.hashAddr(head), 16, false);
        lat += engineAccess(
            index.entryAddr(entry_idx == HubIndex::kNoEntry
                                ? 0 : entry_idx),
            32, write);
        if (hw) {
            pl[curCore].engineBusy(lat + mp.hwHubIndexCycles);
            ++mx.accelOps;
        } else {
            pl[curCore].coreBusy(lat + mp.swHubIndexCycles);
            mx.memStallCycles += lat;
            mx.overheadCycles += mp.swHubIndexCycles;
        }
    }

    /* ---- Queues, activation. ----
     *
     * DepGraph's cross-core activations are explicit messages: the
     * engine "inserts the tail vertex into the local circular queues
     * of all cores that own a partition with it" (Sec. III-B2). A
     * queue entry therefore carries the time it becomes visible to
     * the receiving core; remote deliveries land directly in the
     * target's pending delta (the handoff is explicit, not a stale
     * rescan) and are processed within the same round. */
    void
    enqueueAt(unsigned c, VertexId v, Cycles ready)
    {
        if (!inQueue.testAndSet(v))
            return;
        queue[c].push_back({v, ready});
        queueOp(queueBase[c], true);
    }

    /* Ordinary remote delivery: a plain store another core will only
     * discover at the next round's active scan (no push machinery
     * without the hub index). */
    void
    deliverRemote(VertexId t, Value inf)
    {
        shadow[t] = applyAccum(kind, shadow[t], inf);
    }

    /* Hub-index push: the engine inserts the tail into the owning
     * core's local circular queue (Sec. III-B2), so the influence is
     * consumed within the same round -- this is precisely the cross-
     * core parallelism the direct dependencies unlock (Fig. 5c). */
    void
    pushRemote(VertexId t, Value inf)
    {
        const unsigned owner = part.ownerOf(t);
        delta[t] = applyAccum(kind, delta[t], inf);
        // Any genuine improvement is worth pushing: the message is
        // cheap and it saves the tail's core a full round.
        const bool worth = sum
            ? runtime::worthChasing(kind, state[t], delta[t], gate)
            : wouldChange(kind, state[t], delta[t], eps);
        if (worth) {
            const Cycles send = pl[curCore].coreClock() + 30;
            enqueueAt(owner, t, send);
        }
        if (hw) {
            pl[curCore].engineBusy(20);
            ++mx.accelOps;
        } else {
            pl[curCore].coreBusy(20 + mp.queueOpCycles);
            mx.overheadCycles += 20 + mp.queueOpCycles;
        }
    }

    /* ---- The chain_walk.hh Policy contract. ---- */
    bool hubEnabled() const { return hubOn; }

    bool isSum() const { return sum; }

    Value
    enterVertex(VertexId v)
    {
        // Fetch_Offsets (engine) + the core applying the delta.
        const Cycles off_lat = engineAccess(L.offsetAddr(v), 16, false);
        if (hw) {
            pl[curCore].engineBusy(off_lat);
            ++mx.accelOps;
        } else {
            pl[curCore].coreBusy(off_lat + mp.swTraversalCycles);
            mx.memStallCycles += off_lat;
            mx.overheadCycles += mp.swTraversalCycles;
        }
        coreAccess(L.deltaAddr(v), 8, true);
        coreAccess(L.stateAddr(v), 8, true);
        const Value d = delta[v];
        delta[v] = ident;
        state[v] = applyAccum(kind, state[v], d);
        ++mx.updates;
        processedRound.set(v);
        coreCompute(mp.vertexOpCycles);
        return d;
    }

    Value
    enterRoot(VertexId root, bool root_is_hpp)
    {
        ++epoch;
        const Value d_root = enterVertex(root);
        visitEpoch[root] = epoch;
        if (root_is_hpp) {
            // H'' membership check against the in-memory bitmap.
            Cycles lat = engineAccess(hppBitmap + root / 8, 1, false);
            // DDMU retrieves mu/xi "for all core-paths originated
            // from this vertex" with one hash probe plus a contiguous
            // read of the entry range (Sec. III-B2); per-path checks
            // during the traversal are then register-speed.
            if (hubOn) {
                lat += engineAccess(index.hashAddr(root), 16, false);
                // The entry range is contiguous; the engine streams it
                // at one line per two cycles after the first access.
                const auto entries = index.entriesOf(root);
                Cycles worst = 0;
                std::size_t lines = 0;
                for (std::size_t i = 0; i < entries.size(); i += 2) {
                    worst = std::max(
                        worst, engineAccess(index.entryAddr(entries[i]),
                                            32, false));
                    ++lines;
                }
                lat += worst + 2 * lines;
            }
            if (hw) {
                pl[curCore].engineBusy(lat + mp.hwHubIndexCycles);
                ++mx.accelOps;
            } else {
                pl[curCore].coreBusy(lat + mp.swHubIndexCycles);
                mx.memStallCycles += lat;
                mx.overheadCycles += mp.swHubIndexCycles;
            }
        }
        return d_root;
    }

    void
    chargeEdge(VertexId, EdgeId e, VertexId t)
    {
        /* Fetch_Neighbors + Fetch_States: the engine prefetches the
         * edge and the endpoint's state/delta. */
        Cycles prod = engineAccess(L.targetAddr(e), 4, false);
        if (L.weighted())
            prod = std::max(prod,
                            engineAccess(L.weightAddr(e), 8, false));
        prod = std::max(prod,
                        engineAccess(L.stateAddr(t), 8, false));
        prod = std::max(prod,
                        engineAccess(L.deltaAddr(t), 8, false));
        if (hw) {
            pl[curCore].produce(prod + 2);
            ++mx.prefetchedEdges;
            ++mx.accelOps;
        } else {
            pl[curCore].coreBusy(prod + mp.swTraversalCycles);
            mx.memStallCycles += prod;
            mx.overheadCycles += mp.swTraversalCycles;
        }

        /* Core consumes the edge: DEP_fetch_edge + EdgeCompute. */
        const Cycles wait = pl[curCore].consume(1 + mp.edgeOpCycles);
        mx.memStallCycles += wait;
        mx.computeCycles += 1 + mp.edgeOpCycles;
        ++mx.edgeOps;
        coreAccess(L.deltaAddr(t), 8, true);
    }

    Value
    influence(VertexId src, EdgeId e, Value d)
    {
        return alg.edgeCompute(g, src, e, d);
    }

    gas::LinearFunc
    edgeFunc(VertexId src, EdgeId e)
    {
        return alg.edgeFunc(g, src, e);
    }

    /* Frontier/batch extension: EdgeCompute runs over SoA lane tiles
     * (bitwise-identical values, so the simulated execution -- and
     * its cycle charging, which stays per-edge in chargeEdge() -- is
     * unchanged). The cycle model routes every influence through the
     * simulated queues, so nothing is prebanked. */
    bool lanesEnabled() const { return alg.affineEdgeCompute(); }

    void
    gatherEdgeFuncs(VertexId v, EdgeId eBegin, std::uint32_t cnt,
                    Value *mu, Value *xi, Value *cap)
    {
        alg.edgeFuncBlock(g, v, eBegin, cnt, mu, xi, cap);
    }

    void prebankTile(VertexId, LaneTile &) {}

    std::uint32_t
    pathOfFirstEdge(EdgeId e) const
    {
        const auto it = pathOfFirst.find(e);
        return it == pathOfFirst.end() ? WalkTrack::kNone : it->second;
    }

    std::optional<Value>
    fireShortcut(std::uint32_t pid, const graph::CorePath &cp,
                 Value d_root)
    {
        // Firing pays off when the tail lives on another core -- that
        // core then propagates the influence in parallel with this
        // walk (Fig. 5c); a local tail receives the chain influence
        // within the same traversal anyway.
        if (part.ownerOf(cp.tail) == curCore)
            return std::nullopt;
        if (hw)
            pl[curCore].engineBusy(1);
        else
            pl[curCore].coreBusy(2);
        ++mx.hubIndexLookups;
        const auto x_fit = ddmu.tryShortcut(cp.head, pid, d_root);
        if (!x_fit)
            return std::nullopt;
        ++mx.hubIndexHits;
        ++mx.shortcutsApplied;
        c_shortcuts.inc();
        dg_trace(trace::kShortcut, "core ", curCore, ": v", cp.head,
                 " -> v", cp.tail, " f=", *x_fit);
        obs::span::instant("engine", "shortcut", "tail",
                           static_cast<std::uint64_t>(cp.tail));
        pushRemote(cp.tail, *x_fit);
        return x_fit;
    }

    void
    observeTail(std::uint32_t pid, const graph::CorePath &cp,
                const WalkTrack &tr)
    {
        // Once an entry is Available it is only reused; DDMU does no
        // further fitting work for it (Sec. III-B2).
        const auto existing = index.find(cp.head, pid);
        const bool settled = existing != HubIndex::kNoEntry
            && index.entry(existing).flag == EntryFlag::A;
        if (settled)
            return;
        c_ddmu.inc();
        dg_trace(trace::kDdmu, "observe path ", pid, " head=v",
                 cp.head, " tail=v", cp.tail, " in=", tr.basisIn,
                 " out=", tr.xPure);
        obs::span::instant("engine", "ddmu_fit", "path", pid);
        ddmuAccessCost(cp.head, existing, true);
        const auto before = index.size();
        ddmu.observe(cp.head, cp.tail, pid, tr.basisIn, tr.xPure,
                     tr.composed, fit);
        if (index.size() > before)
            ++mx.hubIndexInserts;
    }

    void
    fictitiousReset(VertexId tail, Value fired)
    {
        // Fictitious edge <-1, tail, NULL, f(s)>: the core consumes it
        // and takes the influence away once. The reset rides with the
        // chain delivery (both are plain stores) and cancels at the
        // barrier.
        const Cycles w2 = pl[curCore].consume(1 + mp.edgeOpCycles);
        mx.memStallCycles += w2;
        mx.computeCycles += 1 + mp.edgeOpCycles;
        coreAccess(L.deltaAddr(tail), 8, true);
        deliverRemote(tail, -fired);
    }

    void
    cancelShortcut(VertexId tail, Value fired)
    {
        deliverRemote(tail, -fired);
    }

    Route
    routeInfluence(VertexId t, Value inf)
    {
        const unsigned owner = part.ownerOf(t);
        if (owner != curCore) {
            deliverRemote(t, inf); // discovered at the next round
            return Route::Banked;  // remote chains resume on their owner
        }
        delta[t] = applyAccum(kind, delta[t], inf);
        if (!runtime::worthChasing(kind, state[t], delta[t], gate))
            return Route::Banked; // banks until it clears the gate
        if (cs.isHubOrCore(t)) {
            // H'' vertex: cut the traversal, hand t over as a new root
            // (it may start core-paths of its own).
            enqueueAt(curCore, t, pl[curCore].coreClock());
            return Route::Banked;
        }
        if (visitEpoch[t] == epoch || processedRound.test(t)) {
            // Already expanded in this traversal, or already applied
            // this round: bank the delta for next round.
            return Route::Banked;
        }
        return Route::Descend;
    }

    bool
    markDescended(VertexId t)
    {
        visitEpoch[t] = epoch;
        return true;
    }

    void
    overflowRoot(VertexId t)
    {
        enqueueAt(curCore, t, pl[curCore].coreClock());
    }
};

} // namespace

DepGraphExecutor::DepGraphExecutor(DepOptions dep,
                                   runtime::EngineOptions opt)
    : dep_(dep), opt_(opt)
{}

std::string
DepGraphExecutor::name() const
{
    if (dep_.mode == Mode::Software)
        return "DepGraph-S";
    return dep_.hubIndexEnabled ? "DepGraph-H" : "DepGraph-H-w";
}

runtime::RunResult
DepGraphExecutor::run(const graph::Graph &g, gas::Algorithm &alg,
                      sim::Machine &m)
{
    alg.prepare(g);
    m.flushCaches();
    m.clearStats();

    const auto &P = m.params();
    const unsigned cores = std::min(opt_.numCores, m.numCores());
    const bool hw = dep_.mode == Mode::Hardware;

    runtime::GraphLayout L(m, g);
    const graph::Partitioning part(g, cores);
    const VertexId n = g.numVertices();
    const auto kind = alg.accumKind();
    const Value ident = alg.identity();
    const Value eps = alg.epsilon();
    const bool is_sum = kind == gas::AccumKind::Sum;
    const bool hub_on = dep_.hubIndexEnabled && alg.transformable();

    /* ---- Preprocessing (software side, Sec. III-B): find hubs,
     * core-vertices and disjoint core-paths; build the H'' bitmap.
     * Note the absolute storage share of the index at reproduction
     * scale is larger than the paper's 0.9-2.8% because the 32 B entry
     * size is constant while the scaled graphs are ~1000x smaller (see
     * EXPERIMENTS.md). ---- */
    const graph::HubSet hubs(g, opt_.hub);
    const graph::CoreSubgraph cs(g, hubs, 4 * opt_.stackDepth, &part);
    const auto path_of_first_edge = indexablePaths(cs, part, kind);

    // Decide the DDMU fitting mode: TwoPoint is exact for purely
    // linear EdgeCompute; capped-linear algorithms (SSWP) need Compose
    // to avoid over-estimating shortcuts under a max accumulator.
    FitMode fit = FitMode::TwoPoint;
    if (dep_.fitMode) {
        fit = *dep_.fitMode;
    } else if (kind != gas::AccumKind::Sum) {
        // Min/max accumulators rarely present two distinguishable
        // inputs for the same head (distances/labels settle quickly),
        // so the two-point protocol would keep entries Initialized
        // forever; composing the per-edge functions during the first
        // walk fits the identical direct dependency in one shot. This
        // also handles capped-linear EdgeCompute (SSWP) exactly.
        fit = FitMode::Compose;
    }

    /* ---- Simulated-memory structures. ---- */
    HubIndex index(m, hubs.numHubs() + cs.numCoreVertices(),
                   2 * cs.paths().size() + 64);
    Ddmu ddmu(index);
    const Addr hpp_bitmap = m.mem().alloc("dep.hpp_bitmap",
                                          (n + 7) / 8);
    std::vector<Addr> queue_base(cores);
    for (unsigned c = 0; c < cores; ++c) {
        queue_base[c] = m.mem().alloc(
            "dep.queue." + std::to_string(c),
            std::max<std::size_t>(256, part.range(c).size()) * 4);
    }
    // The hub index is hot data: tell GRASP-managed L3 banks.
    m.hotRegions().clear();
    m.hotRegions().addRange(index.hashAddr(0), index.byteSize());

    runtime::RunResult result;
    auto &mx = result.metrics;
    mx.coresUsed = cores;

    /* ---- Registry counters mirroring the dg_trace taxonomy. The
     * references are resolved once per run (registration takes the
     * registry mutex); the per-event cost is one relaxed add. ---- */
    auto &reg = obs::registry();
    const obs::Labels engine_labels{{"engine", name()}};
    auto &c_walks = reg.counter("dg_engine_chain_walks_total",
                                "HDTL chain walks (root traversals)",
                                engine_labels);
    auto &c_shortcuts = reg.counter("dg_engine_shortcuts_total",
                                    "Hub-index shortcut firings",
                                    engine_labels);
    auto &c_ddmu = reg.counter("dg_engine_ddmu_observations_total",
                               "DDMU dependency-fit observations",
                               engine_labels);
    auto &c_rounds = reg.counter("dg_engine_rounds_total",
                                 "Engine rounds executed",
                                 engine_labels);

    /* ---- Hub-index warm start (matching logic shared with the
     * native engine via chain_walk.hh). ---- */
    if (hub_on && opt_.hubSeed && !opt_.hubSeed->empty()) {
        forEachSurvivingSeed(
            cs, path_of_first_edge, *opt_.hubSeed,
            [&](std::uint32_t pid, const runtime::HubDependency &d) {
                const auto &p = cs.paths()[pid];
                const auto idx =
                    index.findOrCreate(p.head, p.tail, pid);
                auto &en = index.entry(idx);
                if (en.flag != EntryFlag::A) {
                    en.flag = EntryFlag::A;
                    en.func = d.func;
                    ++mx.hubIndexSeeded;
                }
            });
    }
    // Freeze the per-head directory into its flat sorted form; runtime
    // inserts (DDMU discoveries) flip it back to the map until the
    // next seed install.
    index.flatten();

    /* ---- Functional state. ---- */
    std::vector<Value> state(n), delta(n), shadow(n, ident);
    for (VertexId v = 0; v < n; ++v) {
        state[v] = alg.initState(g, v);
        delta[v] = alg.initDelta(g, v);
    }

    std::vector<CorePipeline> pl;
    pl.reserve(cores);
    for (unsigned c = 0; c < cores; ++c)
        pl.emplace_back(opt_.fifoCapacity, hw);

    std::vector<std::deque<QEntry>> queue(cores);
    Bitmap inQueue(n);
    std::vector<std::uint32_t> visitEpoch(n, 0);
    // A vertex applies its delta at most once per round (as in the
    // baselines); chains still propagate multi-hop within a round
    // because every hop is a first application in dependency order --
    // this realizes Observation one's "least number of updates ...
    // the same as the number of vertices" on a chain.
    Bitmap processedRound(n);

    SimWalkPolicy sw{g,
                     alg,
                     m,
                     P,
                     L,
                     part,
                     cs,
                     index,
                     ddmu,
                     pl,
                     mx,
                     c_shortcuts,
                     c_ddmu,
                     path_of_first_edge,
                     queue_base,
                     queue,
                     inQueue,
                     state,
                     delta,
                     shadow,
                     visitEpoch,
                     processedRound,
                     hpp_bitmap,
                     kind,
                     ident,
                     eps,
                     is_sum,
                     hw,
                     hub_on,
                     fit};
    sw.gate = eps;

    std::vector<WalkFrame> stack;
    stack.reserve(opt_.stackDepth);
    FoldScratch lanes;
    lanes.ensureDepth(opt_.stackDepth);
    obs::span::instant("engine", "simd_dispatch", "avx2",
                       fold::activeIsa() == fold::Isa::Avx2 ? 1 : 0);

    /* ---- Round loop. ---- */
    std::size_t active_total = 0;
    auto seedQueues = [&] {
        inQueue.clearAll();
        active_total = 0;
        for (unsigned c = 0; c < cores; ++c)
            queue[c].clear();
        std::vector<VertexId> actives;
        for (VertexId v = 0; v < n; ++v) {
            if (delta[v] != ident
                && wouldChange(kind, state[v], delta[v], eps)) {
                actives.push_back(v);
                ++active_total;
            }
        }
        sw.gate = runtime::selectionThreshold(kind, eps, delta,
                                              actives);
        // Seed each core's queue most-impactful-first (closest first
        // for min accumulators): chains then start from near-final
        // values and re-updates stay rare.
        std::stable_sort(actives.begin(), actives.end(),
            [&](VertexId a, VertexId b) {
                switch (kind) {
                  case gas::AccumKind::Sum:
                    return std::abs(delta[a]) > std::abs(delta[b]);
                  case gas::AccumKind::Min:
                    return delta[a] < delta[b];
                  case gas::AccumKind::Max:
                    return delta[a] > delta[b];
                }
                return false;
            });
        for (auto v : actives) {
            if (runtime::clearsGate(kind, state[v], delta[v],
                                    sw.gate)) {
                queue[part.ownerOf(v)].push_back({v, 0});
                inQueue.set(v);
            }
        }
    };
    seedQueues();

    for (mx.rounds = 0; mx.rounds < opt_.maxRounds && active_total > 0;
         ++mx.rounds) {
        // Waves: keep draining queues until no core has work, so
        // cross-core activations sent during the round are consumed in
        // the same round (each vertex still applies at most once per
        // round).
        bool any_work = true;
        while (any_work) {
            any_work = false;
            for (unsigned c = 0; c < cores; ++c) {
                sw.curCore = c;
                while (!queue[c].empty()) {
                    // Take the first already-visible entry; an
                    // in-flight push must not block work behind it.
                    std::size_t pick = 0;
                    std::size_t earliest = 0;
                    bool found = false;
                    for (std::size_t i = 0; i < queue[c].size(); ++i) {
                        if (queue[c][i].ready <= pl[c].coreClock()) {
                            pick = i;
                            found = true;
                            break;
                        }
                        if (queue[c][i].ready
                            < queue[c][earliest].ready) {
                            earliest = i;
                        }
                    }
                    if (!found)
                        pick = earliest;
                    const QEntry entry = queue[c][pick];
                    queue[c].erase(queue[c].begin()
                                   + static_cast<std::ptrdiff_t>(pick));
                    any_work = true;
                    const VertexId root = entry.v;
                    inQueue.reset(root);
                    // The message is visible only once it arrived.
                    if (entry.ready > pl[c].coreClock()) {
                        mx.idleCycles +=
                            entry.ready - pl[c].coreClock();
                        pl[c].syncTo(entry.ready);
                    }
                    sw.queueOp(queue_base[c], false); // Get_Root stage
                    if (delta[root] == ident
                        || processedRound.test(root)
                        || !runtime::clearsGate(kind, state[root],
                                                delta[root],
                                                sw.gate)) {
                        sw.coreCompute(1);
                        continue;
                    }
                    dg_trace(trace::kTraverse, "core ", c,
                             ": root v", root, " delta=",
                             delta[root]);
                    c_walks.inc();
                    if (obs::span::active()) {
                        obs::span::Scoped walk("engine", "chain_walk",
                                               "core", c);
                        walkChain(g, cs, opt_.stackDepth, root, stack,
                                  lanes, sw);
                    } else {
                        walkChain(g, cs, opt_.stackDepth, root, stack,
                                  lanes, sw);
                    }
                }
            }
        }

        dg_trace(trace::kEngine, name(), " round ", mx.rounds,
                 " done: updates=", mx.updates);
        c_rounds.inc();
        obs::span::instant("engine", "round_done", "round",
                           mx.rounds);

        /* Barrier: merge remote stores; reseed from banked deltas.
         * The dense merge is vectorized (elementwise, so bitwise
         * identical to the historical loop); it is host work the
         * simulated machine never charged cycles for. */
        processedRound.clearAll();
        fold::mergeDense(kind, delta.data(), shadow.data(), ident, n);
        seedQueues();

        Cycles bar = 0;
        for (unsigned c = 0; c < cores; ++c)
            bar = std::max(bar, pl[c].coreClock());
        for (unsigned c = 0; c < cores; ++c) {
            mx.idleCycles += bar - pl[c].coreClock();
            pl[c].syncTo(bar);
        }
    }

    mx.converged = active_total == 0;
    if (!mx.converged)
        dg_warn(name(), " hit the round limit before converging");

    Cycles makespan = 0;
    for (unsigned c = 0; c < cores; ++c)
        makespan = std::max(makespan, pl[c].coreClock());
    mx.makespan = makespan;

    const auto &ds = ddmu.stats();
    mx.hubIndexLookups = ds.lookups;
    mx.hubIndexHits = ds.hits;
    mx.hubIndexInserts = ds.inserts;
    mx.hubIndexBytes = index.byteSize();
    fold::publishMetrics();

    /* Export the Available entries in engine-independent form (full
     * vertex sequence per dependency) so a later incremental run can
     * warm-start from them after invalidating whatever a churn batch
     * touched. */
    if (opt_.hubExport) {
        opt_.hubExport->deps.clear();
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(index.size()); ++i) {
            const auto &en = index.entry(i);
            if (en.flag != EntryFlag::A)
                continue;
            const auto &p = cs.paths()[en.pathId];
            opt_.hubExport->deps.push_back(
                {en.head, en.tail, p.vertices, en.func});
        }
    }

    result.states = std::move(state);
    result.memStats = m.stats();
    result.energy = sim::computeEnergy(
        result.memStats, mx.busyCycles(),
        mx.idleCycles
            + static_cast<std::uint64_t>(m.numCores() - cores)
                * mx.makespan,
        mx.accelOps);
    return result;
}

runtime::EnginePtr
makeDepGraphS(runtime::EngineOptions opt)
{
    return std::make_unique<DepGraphExecutor>(
        DepOptions{Mode::Software, true, std::nullopt}, opt);
}

runtime::EnginePtr
makeDepGraphH(runtime::EngineOptions opt)
{
    return std::make_unique<DepGraphExecutor>(
        DepOptions{Mode::Hardware, true, std::nullopt}, opt);
}

runtime::EnginePtr
makeDepGraphHNoHub(runtime::EngineOptions opt)
{
    return std::make_unique<DepGraphExecutor>(
        DepOptions{Mode::Hardware, false, std::nullopt}, opt);
}

} // namespace depgraph::dep
