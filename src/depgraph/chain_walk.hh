/**
 * @file
 * The dependency-driven inner loops, shared between execution backends.
 *
 * Two engines execute the paper's HDTL model: the cycle-accurate
 * executor (`src/depgraph/executor.cc`, simulated many-core machine)
 * and the native multi-threaded engine
 * (`src/runtime/parallel_engine.cc`, real host threads). Both must walk
 * chains, track core-paths, fire hub-index shortcuts, compensate with
 * fictitious edges and feed DDMU in EXACTLY the same order, or their
 * fixpoints drift apart. This header owns that control flow once:
 *
 *  - walkChain(): the depth-first HDTL traversal skeleton (paper
 *    Fig. 7) -- stack management, core-path tracking, shortcut firing
 *    at the root edge, tail observation, fictitious-edge cancellation
 *    on every early exit, and the routing decision per influence.
 *  - LaneTile/FoldScratch: the frontier/batch form of the walk. Each
 *    stack frame's out-edge block is gathered into struct-of-arrays
 *    lanes (mu/xi/cap per edge) and EdgeCompute runs over the whole
 *    tile at once through the dispatched fold kernels
 *    (fold_kernels.hh) -- the wide-datapath streaming of the paper's
 *    accelerator, on host SIMD. Influences consumed by the walk are
 *    then read from the tile; remote influences that cannot affect
 *    the traversal may be pre-banked straight from the tile in a
 *    batch (conflict-free per-worker shadow scatter, following Yao et
 *    al.'s parallel data-conflict management).
 *  - ddmuFitStep(): the DDMU N -> I -> A fitting state machine
 *    (Sec. III-B2), generic over the entry representation so the
 *    simulated HubIndex and the native seqlock table share it.
 *  - indexablePaths(): which core-paths get hub-index entries (cross-
 *    partition tails; >= 3 edges for sum accumulators).
 *  - forEachSurvivingSeed(): warm-start matching of exported
 *    dependencies against this run's decomposition.
 *
 * Backends plug in through a Policy object (static polymorphism; the
 * executor's policy charges simulated cycles, the native engine's
 * writes shadow buffers and CAS-es atomics). The policy contract is
 * documented at walkChain().
 */

#ifndef DEPGRAPH_DEPGRAPH_CHAIN_WALK_HH
#define DEPGRAPH_DEPGRAPH_CHAIN_WALK_HH

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "depgraph/fold_kernels.hh"
#include "gas/model.hh"
#include "graph/core_paths.hh"
#include "graph/partition.hh"
#include "runtime/engine.hh"

namespace depgraph::dep
{

/** DDMU fitting mode (see ddmu.hh for the full discussion). */
enum class FitMode
{
    TwoPoint,
    Compose,
};

/** Hub-index entry flag protocol (paper Sec. III-B2). */
enum class EntryFlag : std::uint8_t
{
    N, ///< new: nothing observed
    I, ///< initialized: one sample stored
    A, ///< available: direct dependency usable
};

/** Core-path tracking state carried along a traversal (Sec. III-B2:
 * identifying core-paths on the fly and feeding DDMU). */
struct WalkTrack
{
    static constexpr std::uint32_t kNone = 0xffffffffu;

    std::uint32_t pathIdx = kNone;
    std::uint32_t pos = 0;   ///< edges of the path already walked
    Value basisIn = 0.0;     ///< head delta the samples are based on
    Value xPure = 0.0;       ///< pure influence composed so far
    gas::LinearFunc composed{1.0, 0.0, kInfinity};
    Value shortcutFired = 0.0; ///< influence already sent to the tail
    bool hasShortcut = false;

    bool valid() const { return pathIdx != kNone; }
};

/** One HDTL stack frame: a vertex being expanded plus its edge cursor
 * (paper Fig. 7: vertex id, current/end offsets). */
struct WalkFrame
{
    VertexId v;
    EdgeId cur;
    EdgeId end;
    Value d; ///< the delta this vertex applied on entry
    WalkTrack track;
};

/**
 * Struct-of-arrays lanes for one contiguous out-edge segment of a
 * stack frame: per-edge linear-function coefficients plus the batched
 * EdgeCompute results at the frame's (fixed) entry delta. One tile
 * covers up to fold::kLaneTile edges; frames with larger out-degree
 * refill the tile as the edge cursor crosses segment boundaries.
 *
 * The per-edge influence read from `inf` is bitwise-identical to the
 * scalar Policy::influence(v, e, d) call it replaces: the frame delta
 * d is fixed for the whole frame, the gather reproduces edgeFunc()
 * exactly (gas::Algorithm::edgeFuncBlock contract), and the kernels
 * guarantee ISA-independent rounding (fold_kernels.hh).
 */
struct LaneTile
{
    EdgeId base = 0;          ///< first edge covered by the tile
    std::uint32_t count = 0;  ///< lanes filled (0 forces a refill)
    bool mayPrebank = false;  ///< frame-level prebank eligibility
    std::array<Value, fold::kLaneTile> mu, xi, cap, inf;
    /** Lanes already applied by Policy::prebankTile; the walk skips
     * them (their influence is banked, never descended into). */
    std::array<std::uint8_t, fold::kLaneTile> consumed;
};

/** Per-walker lane-tile scratch, one tile per stack depth (the frame
 * at depth k owns tiles[k]; deeper frames never touch shallower
 * tiles, so a tile stays valid across the subtree walked below its
 * frame). Reused across walks -- tiles are invalidated by the
 * count=0 reset at frame push, never by clearing the arrays. */
struct FoldScratch
{
    std::vector<LaneTile> tiles;

    void
    ensureDepth(unsigned stack_depth)
    {
        const std::size_t need = std::max(1u, stack_depth);
        if (tiles.size() < need)
            tiles.resize(need);
    }
};

/** Where an edge influence went, as decided by Policy::routeInfluence:
 * either it banks (remote delivery, below-gate deposit, H'' cut,
 * already-visited target) and the walk moves on, or the walker should
 * descend into the target. */
enum class Route
{
    Banked,
    Descend,
};

/**
 * One HDTL chain walk from `root` (paper Sec. III-B2, Fig. 7).
 *
 * The Policy supplies everything backend-specific:
 *
 *   bool hubEnabled()              core-path tracking on?
 *   bool isSum()                   sum accumulator? (fictitious edges)
 *   Value enterRoot(v, is_hpp)     apply root's delta, return it; also
 *                                  charges root/index-stream costs
 *   Value enterVertex(v)           apply an interior vertex's delta
 *   void chargeEdge(src, e, t)     per-edge costs (prefetch + consume)
 *   Value influence(src, e, d)     EdgeCompute
 *   gas::LinearFunc edgeFunc(src, e)
 *   std::uint32_t pathOfFirstEdge(e)  indexed path starting at e, or
 *                                  WalkTrack::kNone
 *   std::optional<Value> fireShortcut(pid, cp, d_root)
 *                                  try the hub-index shortcut for the
 *                                  path; deliver to the tail on hit and
 *                                  return the fired influence
 *   void observeTail(pid, cp, track)  feed DDMU at the path tail
 *   void fictitiousReset(tail, fired) consume the fictitious edge
 *                                  <-1, tail, NULL, f(s)> at the tail
 *   void cancelShortcut(tail, fired)  take back a fired shortcut when
 *                                  the walk leaves the path early
 *   Route routeInfluence(t, inf)   deliver inf to t and decide descent
 *   bool markDescended(t)          claim t for expansion (may fail
 *                                  under concurrency)
 *   void overflowRoot(t)           stack full: t becomes a new root
 *
 * Frontier/batch extension (both engines implement it):
 *
 *   bool lanesEnabled()            batch EdgeCompute through lane
 *                                  tiles? (false keeps the historical
 *                                  per-edge scalar path, e.g. for
 *                                  non-affine edgeCompute overrides)
 *   void gatherEdgeFuncs(v, eBegin, n, mu, xi, cap)
 *                                  SoA gather of the edge block's
 *                                  linear functions (edgeFuncBlock)
 *   void prebankTile(v, tile)      optional batched apply: bank lanes
 *                                  whose influence cannot affect this
 *                                  traversal (remote targets) straight
 *                                  from the tile, marking them
 *                                  consumed[]; must account for any
 *                                  per-edge bookkeeping chargeEdge
 *                                  would have done. No-op policies
 *                                  just return.
 *
 * A tile is only offered for prebanking (tile.mayPrebank) when the
 * frame can neither start nor continue a core-path -- the root frame
 * of a hub/core vertex starts paths and tracked frames continue them,
 * so those always route edge-by-edge. Prebanked lanes are never
 * descent candidates (policies only consume remote-target lanes,
 * which always bank), so skipping them preserves the walk order of
 * everything the traversal still visits.
 *
 * Ordering guarantees (relied on by both backends): the shortcut fires
 * before the root edge's influence is routed; the tail observation and
 * fictitious reset happen before the tail edge's influence is routed;
 * a fired shortcut is cancelled on EVERY path-leaving exit (remote
 * target, below-gate bank, H'' cut, revisit, stack overflow).
 */
template <class Policy>
void
walkChain(const graph::Graph &g, const graph::CoreSubgraph &cs,
          unsigned stack_depth, VertexId root,
          std::vector<WalkFrame> &stack, FoldScratch &lanes, Policy &P)
{
    const bool root_is_hpp = cs.isHubOrCore(root);
    const bool hub_on = P.hubEnabled();
    const Value d_root = P.enterRoot(root, root_is_hpp);
    const bool lanes_on = P.lanesEnabled();
    if (lanes_on)
        lanes.ensureDepth(stack_depth);

    /* Reset (not fill) the depth-d tile when a frame is pushed at
     * depth d: count = 0 forces the lazy fill on the first edge, and
     * the eligibility bit is fixed for the frame's lifetime. */
    const auto resetTile = [&](std::size_t depth, EdgeId cur,
                               bool may_prebank) {
        if (!lanes_on)
            return;
        LaneTile &tl = lanes.tiles[depth];
        tl.base = cur;
        tl.count = 0;
        tl.mayPrebank = may_prebank;
    };

    stack.clear();
    stack.push_back({root, g.edgeBegin(root), g.edgeEnd(root), d_root,
                     WalkTrack{}});
    resetTile(0, g.edgeBegin(root), !(hub_on && root_is_hpp));

    while (!stack.empty()) {
        WalkFrame &f = stack.back();
        if (f.cur == f.end) {
            stack.pop_back();
            continue;
        }

        LaneTile *tile = nullptr;
        if (lanes_on) {
            tile = &lanes.tiles[stack.size() - 1];
            if (f.cur >= tile->base + tile->count) {
                /* (Re)fill: gather the next edge segment into SoA
                 * lanes and run the batched EdgeCompute. */
                tile->base = f.cur;
                tile->count = static_cast<std::uint32_t>(
                    std::min<EdgeId>(fold::kLaneTile, f.end - f.cur));
                P.gatherEdgeFuncs(f.v, tile->base, tile->count,
                                  tile->mu.data(), tile->xi.data(),
                                  tile->cap.data());
                fold::edgeApply(tile->mu.data(), tile->xi.data(),
                                tile->cap.data(), f.d,
                                tile->inf.data(), tile->count);
                tile->consumed.fill(0);
                if (tile->mayPrebank)
                    P.prebankTile(f.v, *tile);
            }
            if (tile->consumed[f.cur - tile->base]) {
                ++f.cur;
                continue;
            }
        }

        const EdgeId e = f.cur++;
        const VertexId t = g.target(e);

        P.chargeEdge(f.v, e, t);
        const Value inf = lanes_on
            ? tile->inf[e - tile->base]
            : P.influence(f.v, e, f.d);

        /* Core-path tracking. */
        WalkTrack child;
        if (hub_on && f.v == root && root_is_hpp) {
            const auto pid = P.pathOfFirstEdge(e);
            if (pid != WalkTrack::kNone) {
                const auto &cp = cs.paths()[pid];
                child.pathIdx = pid;
                child.pos = 1;
                child.basisIn = d_root;
                /* f.d == d_root on the root frame, so the (possibly
                 * lane-computed) inf IS influence(f.v, e, d_root). */
                child.xPure = inf;
                child.composed = P.edgeFunc(f.v, e);
                /* Shortcut: deliver the head's influence to the tail
                 * immediately if the dependency is available. Only sum
                 * accumulators need the fictitious-edge bookkeeping:
                 * min/max double delivery is idempotent. */
                if (const auto fired = P.fireShortcut(pid, cp, d_root);
                    fired && P.isSum()) {
                    child.shortcutFired = *fired;
                    child.hasShortcut = true;
                }
            }
        } else if (hub_on && f.track.valid()) {
            const auto &cp = cs.paths()[f.track.pathIdx];
            if (f.track.pos < cp.edges.size()
                && cp.edges[f.track.pos] == e) {
                child = f.track;
                ++child.pos;
                child.xPure = P.influence(f.v, e, f.track.xPure);
                child.composed = gas::LinearFunc::compose(
                    P.edgeFunc(f.v, e), f.track.composed);
            }
        }

        /* Tail reached: record the observation with DDMU and emit the
         * fictitious reset edge if the shortcut double-delivered. */
        if (child.valid()
            && child.pos == cs.paths()[child.pathIdx].edges.size()) {
            const auto &cp = cs.paths()[child.pathIdx];
            P.observeTail(child.pathIdx, cp, child);
            if (child.hasShortcut)
                P.fictitiousReset(cp.tail, child.shortcutFired);
            child = WalkTrack{};
        }

        /* A tracked core-path that terminates before its tail must take
         * back the influence the shortcut already sent (otherwise the
         * tail would keep a copy the in-path propagation never
         * matches). */
        auto cancel_shortcut = [&] {
            if (child.valid() && child.hasShortcut)
                P.cancelShortcut(cs.paths()[child.pathIdx].tail,
                                 child.shortcutFired);
        };

        /* Deliver the influence and decide whether to descend. */
        if (P.routeInfluence(t, inf) != Route::Descend) {
            cancel_shortcut();
            continue;
        }
        if (stack.size() >= stack_depth) {
            /* Stack full: the last prefetched vertex becomes a new root
             * (paper Sec. III-B2). */
            cancel_shortcut();
            P.overflowRoot(t);
            continue;
        }
        if (!P.markDescended(t)) {
            /* Lost a claim race (native engine only): t was applied by
             * another worker between routing and claiming. */
            cancel_shortcut();
            continue;
        }
        const Value d_t = P.enterVertex(t);
        stack.push_back({t, g.edgeBegin(t), g.edgeEnd(t), d_t, child});
        /* Interior frames never start core-paths; only a tracked
         * child (continuing one) keeps the per-edge path. */
        resetTile(stack.size() - 1, g.edgeBegin(t), !child.valid());
    }
}

/** Outcome of one DDMU fitting step. */
enum class FitOutcome
{
    Sampled,  ///< observation stored; entry still N/I
    Promoted, ///< entry became Available
    Kept,     ///< entry was already Available; untouched
};

/**
 * Advance one hub-index entry's N -> I -> A protocol with a completed
 * core-path observation (paper Sec. III-B2). Generic over the entry
 * representation: any struct with `flag`, `func`, `sampleIn`,
 * `sampleOut` members (the simulated HubEntry and the native engine's
 * seqlock-guarded entry both qualify).
 *
 * @param in       The delta that entered the path at the head.
 * @param out      The pure influence delivered at the tail.
 * @param composed The traversal-composed function (Compose mode).
 */
template <class Entry>
FitOutcome
ddmuFitStep(Entry &e, Value in, Value out,
            const gas::LinearFunc &composed, FitMode mode)
{
    if (mode == FitMode::Compose) {
        /* Exact composition: available immediately. */
        const bool promoted = e.flag != EntryFlag::A;
        e.func = composed;
        e.flag = EntryFlag::A;
        return promoted ? FitOutcome::Promoted : FitOutcome::Kept;
    }

    switch (e.flag) {
      case EntryFlag::N:
        e.sampleIn = in;
        e.sampleOut = out;
        e.flag = EntryFlag::I;
        return FitOutcome::Sampled;
      case EntryFlag::I: {
        const Value din = in - e.sampleIn;
        if (din == 0.0) {
            /* Same input twice: refresh the stored sample and wait for
             * a distinguishable observation. */
            e.sampleOut = out;
            return FitOutcome::Sampled;
        }
        const Value mu = (out - e.sampleOut) / din;
        const Value xi = out - mu * in;
        if (!std::isfinite(mu) || !std::isfinite(xi)) {
            e.sampleIn = in;
            e.sampleOut = out;
            return FitOutcome::Sampled;
        }
        e.func = {mu, xi, kInfinity};
        e.flag = EntryFlag::A;
        return FitOutcome::Promoted;
      }
      case EntryFlag::A:
        /* Keep the solved dependency; the paper reuses A entries. */
        return FitOutcome::Kept;
    }
    return FitOutcome::Kept;
}

/**
 * First-edge -> core-path map used to recognize path starts during a
 * walk. Entries are kept for core-paths that (a) end on another
 * partition -- a local tail receives the chain influence within the
 * same traversal anyway, so only cross-partition dependencies are ever
 * consulted (Fig. 5c) -- and (b), for sum accumulators, span >= 3
 * edges: shorter ones cost more in fictitious-edge resets than they
 * save.
 */
inline std::unordered_map<EdgeId, std::uint32_t>
indexablePaths(const graph::CoreSubgraph &cs,
               const graph::Partitioning &part, gas::AccumKind kind)
{
    std::unordered_map<EdgeId, std::uint32_t> first_edge;
    const std::size_t min_len = kind == gas::AccumKind::Sum ? 3 : 1;
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(cs.paths().size()); ++i) {
        const auto &p = cs.paths()[i];
        if (p.edges.size() >= min_len
            && part.ownerOf(p.tail) != part.ownerOf(p.head))
            first_edge.emplace(p.edges[0], i);
    }
    return first_edge;
}

/**
 * Hub-index warm start: a dependency learned by a previous run may be
 * installed as an Available entry only when its full head..tail vertex
 * sequence reappears verbatim among THIS run's indexed core-paths
 * (per-edge functions depend only on the source's out-edge set, so an
 * untouched path composes to the identical function). Calls
 * `install(path_index, dep)` once per surviving dependency; anything
 * else simply fails to match and gets re-learned from scratch.
 */
template <class Fn>
void
forEachSurvivingSeed(
    const graph::CoreSubgraph &cs,
    const std::unordered_map<EdgeId, std::uint32_t> &first_edge,
    const runtime::HubArtifacts &seeds, Fn &&install)
{
    std::unordered_map<VertexId, std::vector<std::uint32_t>>
        paths_by_head;
    for (const auto &[fe, pid] : first_edge) {
        static_cast<void>(fe);
        paths_by_head[cs.paths()[pid].head].push_back(pid);
    }
    for (const auto &d : seeds.deps) {
        const auto it = paths_by_head.find(d.head);
        if (it == paths_by_head.end())
            continue;
        for (const auto pid : it->second) {
            const auto &p = cs.paths()[pid];
            if (p.tail != d.tail || p.vertices != d.vertices)
                continue;
            install(pid, d);
            break;
        }
    }
}

} // namespace depgraph::dep

#endif // DEPGRAPH_DEPGRAPH_CHAIN_WALK_HH
