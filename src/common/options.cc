#include "common/options.hh"

#include <cstdlib>
#include <iostream>

#include "common/logging.hh"

namespace depgraph
{

void
Options::declare(const std::string &name, const std::string &def,
                 const std::string &help)
{
    flags_[name] = Flag{def, help};
}

void
Options::parse(int argc, char **argv)
{
    program_ = argc > 0 ? argv[0] : "?";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::cout << "usage: " << program_ << " [--flag=value ...]\n";
            for (const auto &[name, flag] : flags_) {
                std::cout << "  --" << name << " (default: "
                          << (flag.value.empty() ? "\"\"" : flag.value)
                          << ")\n      " << flag.help << "\n";
            }
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0)
            dg_fatal("unexpected positional argument '", arg, "'");
        arg = arg.substr(2);
        std::string name, value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0)
                   != 0) {
            name = arg;
            value = argv[++i];
        } else {
            name = arg;
            value = "1"; // bare boolean flag
        }
        auto it = flags_.find(name);
        if (it == flags_.end())
            dg_fatal("unknown flag '--", name, "' (try --help)");
        it->second.value = value;
    }
}

const Options::Flag &
Options::lookup(const std::string &name) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        dg_panic("flag '", name, "' was never declared");
    return it->second;
}

std::string
Options::getString(const std::string &name) const
{
    return lookup(name).value;
}

std::int64_t
Options::getInt(const std::string &name) const
{
    return std::stoll(lookup(name).value);
}

double
Options::getDouble(const std::string &name) const
{
    return std::stod(lookup(name).value);
}

bool
Options::getBool(const std::string &name) const
{
    const auto &v = lookup(name).value;
    return v == "1" || v == "true" || v == "yes" || v == "on";
}

} // namespace depgraph
