/**
 * @file
 * Minimal command-line flag parser for examples and bench binaries.
 *
 * Syntax: --name=value or --name value; bare --flag sets a bool. Unknown
 * flags are fatal so that typos in experiment scripts never pass silently.
 */

#ifndef DEPGRAPH_COMMON_OPTIONS_HH
#define DEPGRAPH_COMMON_OPTIONS_HH

#include <cstdint>
#include <map>
#include <string>

namespace depgraph
{

class Options
{
  public:
    /** Parse argv. Declared flags must be registered before parse(). */
    Options() = default;

    /** Register a flag with a default value and a help string. */
    void declare(const std::string &name, const std::string &def,
                 const std::string &help);

    /** Parse the command line; handles --help by printing and exiting. */
    void parse(int argc, char **argv);

    std::string getString(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getBool(const std::string &name) const;

  private:
    struct Flag
    {
        std::string value;
        std::string help;
    };

    const Flag &lookup(const std::string &name) const;

    std::map<std::string, Flag> flags_;
    std::string program_;
};

} // namespace depgraph

#endif // DEPGRAPH_COMMON_OPTIONS_HH
