/**
 * @file
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.
 *
 * Used to frame write-ahead-log records and checkpoint files so a torn
 * write (partial record at the tail after a crash) is detected and
 * truncated instead of being replayed as garbage. Not cryptographic --
 * it guards against truncation and bit rot, not an adversary.
 */

#ifndef DEPGRAPH_COMMON_CRC32_HH
#define DEPGRAPH_COMMON_CRC32_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace depgraph
{

namespace detail
{

inline constexpr std::array<std::uint32_t, 256>
makeCrc32Table()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

inline constexpr auto kCrc32Table = makeCrc32Table();

} // namespace detail

/** CRC-32 of `n` bytes, chainable via `seed` (pass a previous result
 * to continue a running checksum over split buffers). */
inline std::uint32_t
crc32(const void *data, std::size_t n, std::uint32_t seed = 0)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace depgraph

#endif // DEPGRAPH_COMMON_CRC32_HH
