/**
 * @file
 * Console table printer used by the benchmark harness.
 *
 * Every bench binary regenerates one paper table/figure as rows of an
 * aligned text table, so that the output can be compared side-by-side
 * with the paper and machine-parsed.
 */

#ifndef DEPGRAPH_COMMON_TABLE_HH
#define DEPGRAPH_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace depgraph
{

class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; cell count must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment to a string (ends with newline). */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

    /** Format helper: fixed-point double. */
    static std::string fmt(double v, int precision = 2);

    /** Format helper: integer with thousands separators. */
    static std::string fmt(std::uint64_t v);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace depgraph

#endif // DEPGRAPH_COMMON_TABLE_HH
