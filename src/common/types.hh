/**
 * @file
 * Fundamental scalar types shared by every DepGraph module.
 *
 * Vertex identifiers are 32-bit (the paper's largest graph, Friendster,
 * has 65.6M vertices); edge identifiers are 64-bit because edge counts
 * comfortably exceed 2^32 at full scale.
 */

#ifndef DEPGRAPH_COMMON_TYPES_HH
#define DEPGRAPH_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <limits>

namespace depgraph
{

/** Identifier of a vertex in a graph. */
using VertexId = std::uint32_t;

/** Index of an edge in the CSR edge array. */
using EdgeId = std::uint64_t;

/** Edge weight / vertex state scalar. */
using Value = double;

/** Simulated time in core clock cycles. */
using Cycles = std::uint64_t;

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Sentinel vertex id meaning "no vertex". */
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/** Sentinel used by fictitious (state-reset) edges; see the paper,
 * Sec. III-B2 "Faster Propagation Based on Hub Index". */
inline constexpr VertexId kFictitiousVertex = kInvalidVertex - 1;

/** Positive infinity for min-style algorithms (SSSP). */
inline constexpr Value kInfinity = std::numeric_limits<Value>::infinity();

} // namespace depgraph

#endif // DEPGRAPH_COMMON_TYPES_HH
