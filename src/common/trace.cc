#include "common/trace.hh"

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace depgraph::trace
{

namespace
{

unsigned &
mask()
{
    static unsigned m = [] {
        const char *env = std::getenv("DG_TRACE");
        return env ? parseCategories(env) : 0u;
    }();
    return m;
}

const char *
name(unsigned category)
{
    switch (category) {
      case kTraverse:
        return "traverse";
      case kShortcut:
        return "shortcut";
      case kDdmu:
        return "ddmu";
      case kQueue:
        return "queue";
      case kEngine:
        return "engine";
      default:
        return "trace";
    }
}

} // namespace

bool
enabled(unsigned category)
{
    return (mask() & category) != 0;
}

void
enable(unsigned categories)
{
    mask() |= categories;
}

void
disable(unsigned categories)
{
    mask() &= ~categories;
}

unsigned
parseCategories(const std::string &list)
{
    unsigned m = 0;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item == "all")
            m |= kAll;
        else if (item == "traverse" || item == "hdtl")
            m |= kTraverse;
        else if (item == "shortcut")
            m |= kShortcut;
        else if (item == "ddmu")
            m |= kDdmu;
        else if (item == "queue")
            m |= kQueue;
        else if (item == "engine")
            m |= kEngine;
        else if (!item.empty())
            dg_warn("unknown trace category '", item,
                    "' (valid: traverse|hdtl, shortcut, ddmu, queue, "
                    "engine, all)");
    }
    return m;
}

void
emit(unsigned category, const std::string &msg)
{
    std::cerr << name(category) << ": " << msg << '\n';
}

unsigned
activeMask()
{
    return mask();
}

} // namespace depgraph::trace
