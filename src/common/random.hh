/**
 * @file
 * Deterministic, seedable random number generation.
 *
 * Every stochastic component in the repository (graph generators, hub
 * sampling, workload construction) draws from an explicitly-seeded Rng so
 * that tests and benchmarks are reproducible bit-for-bit.
 */

#ifndef DEPGRAPH_COMMON_RANDOM_HH
#define DEPGRAPH_COMMON_RANDOM_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace depgraph
{

/**
 * xorshift128+ generator: tiny state, high quality, fully deterministic.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding so that nearby seeds give unrelated streams.
        std::uint64_t z = seed;
        for (auto *s : {&s0_, &s1_}) {
            z += 0x9e3779b97f4a7c15ull;
            std::uint64_t t = z;
            t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ull;
            t = (t ^ (t >> 27)) * 0x94d049bb133111ebull;
            *s = t ^ (t >> 31);
        }
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        dg_assert(bound > 0, "nextBounded(0)");
        // Rejection sampling to remove modulo bias.
        const std::uint64_t threshold = -bound % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Uniform double in [lo, hi). */
    double
    nextDouble(double lo, double hi)
    {
        return lo + (hi - lo) * nextDouble();
    }

    /** Bernoulli trial with probability p. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

  private:
    std::uint64_t s0_;
    std::uint64_t s1_;
};

/**
 * Zipfian sampler over ranks {0, ..., n-1} with exponent alpha, using the
 * classic inverse-CDF table. Rank 0 is the most probable outcome. Used by
 * the power-law graph generator (paper Table V uses alpha in [1.8, 2.2]).
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double alpha)
        : cdf_(n)
    {
        dg_assert(n > 0, "empty Zipf support");
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
            cdf_[i] = sum;
        }
        for (auto &c : cdf_)
            c /= sum;
    }

    /** Draw one rank. */
    std::size_t
    sample(Rng &rng) const
    {
        const double u = rng.nextDouble();
        // Binary search for the first cdf entry >= u.
        std::size_t lo = 0, hi = cdf_.size() - 1;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (cdf_[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace depgraph

#endif // DEPGRAPH_COMMON_RANDOM_HH
