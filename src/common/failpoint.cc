#include "common/failpoint.hh"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

namespace depgraph::failpoint
{

namespace
{

enum class Action
{
    Error,
    Delay,
    Exit,
};

struct Point
{
    Action action = Action::Error;
    std::uint64_t arg = 0;      ///< delay ms / exit code
    std::uint64_t firstHit = 1; ///< fire on this hit and later
    std::uint64_t hits = 0;     ///< evaluations since arming
    std::string spec;           ///< original text, for list()
};

struct Registry
{
    std::mutex mu;
    std::map<std::string, Point> points;
};

/** Fast-path gate: number of armed points. Zero (the overwhelmingly
 * common case) means evaluate() is one relaxed load and out. */
std::atomic<std::uint64_t> g_armed{0};

Registry &
registry()
{
    static Registry r;
    return r;
}

/** Parse "error" | "delay(<ms>)" | "exit(<code>)" [+ "@<n>"]. */
bool
parseSpec(const std::string &spec, Point &out)
{
    std::string body = spec;
    out.spec = spec;
    const auto at = body.rfind('@');
    if (at != std::string::npos) {
        try {
            std::size_t pos = 0;
            out.firstHit = std::stoull(body.substr(at + 1), &pos);
            if (pos != body.size() - at - 1 || out.firstHit == 0)
                return false;
        } catch (...) {
            return false;
        }
        body = body.substr(0, at);
    }
    std::string kind = body;
    std::uint64_t arg = 0;
    const auto open = body.find('(');
    if (open != std::string::npos) {
        if (body.back() != ')')
            return false;
        kind = body.substr(0, open);
        const auto inner =
            body.substr(open + 1, body.size() - open - 2);
        try {
            std::size_t pos = 0;
            arg = std::stoull(inner, &pos);
            if (pos != inner.size())
                return false;
        } catch (...) {
            return false;
        }
    }
    if (kind == "error") {
        out.action = Action::Error;
    } else if (kind == "delay") {
        out.action = Action::Delay;
    } else if (kind == "exit") {
        out.action = Action::Exit;
        if (open == std::string::npos)
            arg = 137; // SIGKILL convention, the chaos default
    } else {
        return false;
    }
    out.arg = arg;
    return true;
}

} // namespace

bool
evaluate(const char *name)
{
    if (g_armed.load(std::memory_order_relaxed) == 0)
        return false;

    Action action;
    std::uint64_t arg;
    {
        auto &reg = registry();
        std::lock_guard lk(reg.mu);
        const auto it = reg.points.find(name);
        if (it == reg.points.end())
            return false;
        auto &p = it->second;
        if (++p.hits < p.firstHit)
            return false;
        action = p.action;
        arg = p.arg;
    }
    switch (action) {
      case Action::Error:
        return true;
      case Action::Delay:
        std::this_thread::sleep_for(std::chrono::milliseconds(arg));
        return false;
      case Action::Exit:
        // The whole point: die without destructors, flushes, or
        // atexit handlers -- indistinguishable from SIGKILL to the
        // rest of the process's state.
        std::fprintf(stderr, "failpoint '%s': _exit(%llu)\n", name,
                     static_cast<unsigned long long>(arg));
        std::fflush(stderr);
        _exit(static_cast<int>(arg));
    }
    return false;
}

bool
arm(const std::string &name, const std::string &spec)
{
    auto &reg = registry();
    if (spec == "off") {
        std::lock_guard lk(reg.mu);
        if (reg.points.erase(name))
            g_armed.fetch_sub(1, std::memory_order_relaxed);
        return true;
    }
    Point p;
    if (!parseSpec(spec, p))
        return false;
    std::lock_guard lk(reg.mu);
    const auto [it, inserted] = reg.points.insert_or_assign(name, p);
    (void)it;
    if (inserted)
        g_armed.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
clearAll()
{
    auto &reg = registry();
    std::lock_guard lk(reg.mu);
    g_armed.fetch_sub(reg.points.size(), std::memory_order_relaxed);
    reg.points.clear();
}

std::vector<std::string>
list()
{
    auto &reg = registry();
    std::lock_guard lk(reg.mu);
    std::vector<std::string> out;
    out.reserve(reg.points.size());
    for (const auto &[name, p] : reg.points) {
        std::ostringstream os;
        os << name << "=" << p.spec << " hits=" << p.hits;
        out.push_back(os.str());
    }
    return out;
}

std::size_t
armFromEnv(const char *env_var)
{
    const char *raw = std::getenv(env_var);
    if (!raw || !*raw)
        return 0;
    std::size_t armed = 0;
    std::string entry;
    std::istringstream is(raw);
    while (std::getline(is, entry, ';')) {
        std::istringstream sub(entry);
        std::string one;
        while (std::getline(sub, one, ',')) {
            if (one.empty())
                continue;
            const auto eq = one.find('=');
            if (eq == std::string::npos
                || !arm(one.substr(0, eq), one.substr(eq + 1))) {
                std::fprintf(stderr,
                             "failpoint: ignoring malformed %s "
                             "entry '%s'\n",
                             env_var, one.c_str());
                continue;
            }
            ++armed;
        }
    }
    return armed;
}

std::uint64_t
armedCount()
{
    return g_armed.load(std::memory_order_relaxed);
}

} // namespace depgraph::failpoint
