/**
 * @file
 * Failpoints: named fault-injection sites compiled into the binary.
 *
 * A call site marks a crash-consistency-critical moment:
 *
 *   if (dg_failpoint("wal.after_append"))
 *       return false;                  // injected I/O error
 *
 * Disarmed (the default) this costs one relaxed atomic load -- cheap
 * enough to leave in production builds, which is the point: the chaos
 * harness kills the REAL dgserve binary at these exact sites, not a
 * special test build. A failpoint is armed by name with a spec:
 *
 *   off            disarm
 *   error          evaluate() returns true (caller injects a failure)
 *   delay(<ms>)    sleep, then return false (widen race windows)
 *   exit(<code>)   _exit(code) immediately -- simulates SIGKILL/power
 *                  loss at exactly this instruction
 *
 * An optional `@<n>` suffix makes the action fire on the n-th hit and
 * later ones only ("exit(137)@25" crashes on the 25th pass), so a
 * harness can let traffic flow before pulling the plug. Arming comes
 * from two planes: the DG_FAILPOINTS environment variable
 * ("a=exit(137)@3;b=delay(50)", parsed by armFromEnv() at startup) and
 * the `failpoint` protocol verb on a live server. The catalog of wired
 * sites lives in docs/DURABILITY.md.
 */

#ifndef DEPGRAPH_COMMON_FAILPOINT_HH
#define DEPGRAPH_COMMON_FAILPOINT_HH

#include <string>
#include <vector>

namespace depgraph::failpoint
{

/**
 * Evaluate the named site. Returns true when an `error` action fired
 * (the caller should fail the operation); sleeps through `delay`;
 * never returns under `exit`. Disarmed sites return false after a
 * single relaxed atomic load.
 */
bool evaluate(const char *name);

/**
 * Arm (or re-arm) a failpoint. @return false on a malformed spec.
 * "off" disarms the single name; specs are as documented above.
 */
bool arm(const std::string &name, const std::string &spec);

/** Disarm every failpoint. */
void clearAll();

/** Armed failpoints as "name=spec hits=<n>" lines (for the protocol
 * verb and debugging). Empty when nothing is armed. */
std::vector<std::string> list();

/** Parse DG_FAILPOINTS ("name=spec;name=spec", ';' or ',' separated).
 * @return number of failpoints armed; malformed entries are skipped
 * with a warning on stderr. */
std::size_t armFromEnv(const char *env_var = "DG_FAILPOINTS");

/** Total hits across all evaluations of armed failpoints (tests). */
std::uint64_t armedCount();

} // namespace depgraph::failpoint

/** Sugar so call sites read as a statement of intent. */
#define dg_failpoint(name) (::depgraph::failpoint::evaluate(name))

#endif // DEPGRAPH_COMMON_FAILPOINT_HH
