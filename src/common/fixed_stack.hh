/**
 * @file
 * Fixed-depth stack.
 *
 * Models the HDTL traversal stack inside the DepGraph engine (paper
 * Fig. 7): a small hardware structure with a configurable maximum depth
 * (default 10, see the Fig. 15 sensitivity study). Pushing past the
 * configured depth fails, which the traversal logic treats as "cut the
 * path here" rather than as an error.
 */

#ifndef DEPGRAPH_COMMON_FIXED_STACK_HH
#define DEPGRAPH_COMMON_FIXED_STACK_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace depgraph
{

template <typename T>
class FixedStack
{
  public:
    explicit FixedStack(std::size_t depth)
        : buf_(), depth_(depth)
    {
        dg_assert(depth > 0, "fixed stack needs depth > 0");
        buf_.reserve(depth);
    }

    bool empty() const { return buf_.empty(); }
    bool full() const { return buf_.size() == depth_; }
    std::size_t size() const { return buf_.size(); }
    std::size_t depth() const { return depth_; }

    /** Push; returns false when the stack is at maximum depth. */
    bool
    tryPush(const T &v)
    {
        if (full())
            return false;
        buf_.push_back(v);
        return true;
    }

    T &
    top()
    {
        dg_assert(!empty(), "top of empty stack");
        return buf_.back();
    }

    const T &
    top() const
    {
        dg_assert(!empty(), "top of empty stack");
        return buf_.back();
    }

    void
    pop()
    {
        dg_assert(!empty(), "pop from empty stack");
        buf_.pop_back();
    }

    void clear() { buf_.clear(); }

    /** Indexed access from the bottom (0) to the top (size()-1). */
    const T &operator[](std::size_t i) const { return buf_[i]; }
    T &operator[](std::size_t i) { return buf_[i]; }

  private:
    std::vector<T> buf_;
    std::size_t depth_;
};

} // namespace depgraph

#endif // DEPGRAPH_COMMON_FIXED_STACK_HH
