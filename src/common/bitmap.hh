/**
 * @file
 * Compact bitmap over vertex ids.
 *
 * Used for the in-memory H'' bitmap handed to the DepGraph engine via
 * DEP_configure() (paper Sec. III-B2) and for frontier/visited sets in
 * the software runtimes.
 */

#ifndef DEPGRAPH_COMMON_BITMAP_HH
#define DEPGRAPH_COMMON_BITMAP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace depgraph
{

class Bitmap
{
  public:
    Bitmap() = default;

    explicit Bitmap(std::size_t n)
        : words_((n + 63) / 64, 0), size_(n)
    {}

    std::size_t size() const { return size_; }

    void
    resize(std::size_t n)
    {
        words_.assign((n + 63) / 64, 0);
        size_ = n;
    }

    bool
    test(std::size_t i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1ull;
    }

    void
    set(std::size_t i)
    {
        words_[i >> 6] |= (1ull << (i & 63));
    }

    void
    reset(std::size_t i)
    {
        words_[i >> 6] &= ~(1ull << (i & 63));
    }

    /** Set bit i; returns true if it was previously clear. */
    bool
    testAndSet(std::size_t i)
    {
        const std::uint64_t mask = 1ull << (i & 63);
        std::uint64_t &w = words_[i >> 6];
        const bool was = w & mask;
        w |= mask;
        return !was;
    }

    void
    clearAll()
    {
        for (auto &w : words_)
            w = 0;
    }

    /** Population count over the whole bitmap. */
    std::size_t
    count() const
    {
        std::size_t c = 0;
        for (auto w : words_)
            c += static_cast<std::size_t>(__builtin_popcountll(w));
        return c;
    }

    /** Approximate memory footprint in bytes (for storage accounting). */
    std::size_t
    byteSize() const
    {
        return words_.size() * sizeof(std::uint64_t);
    }

  private:
    std::vector<std::uint64_t> words_;
    std::size_t size_ = 0;
};

} // namespace depgraph

#endif // DEPGRAPH_COMMON_BITMAP_HH
