#include "common/table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/logging.hh"

namespace depgraph
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    dg_assert(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    dg_assert(cells.size() == headers_.size(),
              "row has ", cells.size(), " cells, expected ",
              headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "") << std::left
               << std::setw(static_cast<int>(width[c])) << row[c];
        }
        os << '\n';
    };

    emitRow(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emitRow(row);
    return os.str();
}

void
Table::print() const
{
    std::cout << render() << std::flush;
}

std::string
Table::fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::fmt(std::uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace depgraph
