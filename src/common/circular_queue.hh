/**
 * @file
 * Fixed-capacity circular FIFO queue.
 *
 * Models the per-core "local circular queue" of active root vertices that
 * the graph processing system maintains in memory and the DepGraph engine
 * drains (paper Sec. III-B2, "Initialization"). Also reused as a generic
 * bounded queue elsewhere in the simulator.
 */

#ifndef DEPGRAPH_COMMON_CIRCULAR_QUEUE_HH
#define DEPGRAPH_COMMON_CIRCULAR_QUEUE_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace depgraph
{

template <typename T>
class CircularQueue
{
  public:
    explicit CircularQueue(std::size_t capacity)
        : buf_(capacity), head_(0), tail_(0), size_(0)
    {
        dg_assert(capacity > 0, "circular queue needs capacity > 0");
    }

    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == buf_.size(); }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return buf_.size(); }

    /** Enqueue; returns false (drops) when full. */
    bool
    tryPush(const T &v)
    {
        if (full())
            return false;
        buf_[tail_] = v;
        tail_ = (tail_ + 1) % buf_.size();
        ++size_;
        return true;
    }

    /** Enqueue; panics when full. */
    void
    push(const T &v)
    {
        dg_assert(tryPush(v), "push to full circular queue");
    }

    /** Dequeue the oldest element; panics when empty. */
    T
    pop()
    {
        dg_assert(!empty(), "pop from empty circular queue");
        T v = buf_[head_];
        head_ = (head_ + 1) % buf_.size();
        --size_;
        return v;
    }

    /** Peek the oldest element without removing it. */
    const T &
    front() const
    {
        dg_assert(!empty(), "front of empty circular queue");
        return buf_[head_];
    }

    void
    clear()
    {
        head_ = tail_ = 0;
        size_ = 0;
    }

  private:
    std::vector<T> buf_;
    std::size_t head_;
    std::size_t tail_;
    std::size_t size_;
};

} // namespace depgraph

#endif // DEPGRAPH_COMMON_CIRCULAR_QUEUE_HH
