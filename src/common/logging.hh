/**
 * @file
 * gem5-flavoured status and error reporting.
 *
 * panic()  -- an internal invariant was violated (a DepGraph bug); aborts.
 * fatal()  -- the user asked for something impossible (bad config); exits.
 * warn()   -- something works but not as well as it should.
 * inform() -- plain status output.
 */

#ifndef DEPGRAPH_COMMON_LOGGING_HH
#define DEPGRAPH_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace depgraph
{

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Abort with a message: internal invariant violated. */
#define dg_panic(...) \
    ::depgraph::detail::panicImpl(__FILE__, __LINE__, \
                                  ::depgraph::detail::format(__VA_ARGS__))

/** Exit with a message: user/configuration error. */
#define dg_fatal(...) \
    ::depgraph::detail::fatalImpl(__FILE__, __LINE__, \
                                  ::depgraph::detail::format(__VA_ARGS__))

/** Non-fatal warning. */
#define dg_warn(...) \
    ::depgraph::detail::warnImpl(::depgraph::detail::format(__VA_ARGS__))

/** Informational message. */
#define dg_inform(...) \
    ::depgraph::detail::informImpl(::depgraph::detail::format(__VA_ARGS__))

/** Assert an invariant with a formatted message. */
#define dg_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::depgraph::detail::panicImpl(__FILE__, __LINE__, \
                ::depgraph::detail::format("assertion '" #cond "' failed: ", \
                                           ##__VA_ARGS__)); \
        } \
    } while (0)

} // namespace depgraph

#endif // DEPGRAPH_COMMON_LOGGING_HH
