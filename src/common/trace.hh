/**
 * @file
 * gem5-style categorized debug tracing.
 *
 * Trace points are always compiled in but cost one branch when the
 * category is disabled. Categories are enabled programmatically
 * (traceEnable) or through the DG_TRACE environment variable, a
 * comma-separated category list ("hdtl,ddmu" or "all"):
 *
 *   DG_TRACE=shortcut ./dgrun --dataset PK --algo sssp ...
 *
 * Output goes to stderr as "category: message".
 */

#ifndef DEPGRAPH_COMMON_TRACE_HH
#define DEPGRAPH_COMMON_TRACE_HH

#include <string>

#include "common/logging.hh"

namespace depgraph
{

namespace trace
{

/** Trace categories, one bit each. */
enum : unsigned
{
    kTraverse = 1u << 0, ///< HDTL traversal decisions
    kShortcut = 1u << 1, ///< hub-index shortcut firings
    kDdmu = 1u << 2,     ///< DDMU observations and fits
    kQueue = 1u << 3,    ///< root queue activity
    kEngine = 1u << 4,   ///< engine round/barrier events
    kAll = ~0u,
};

/** Is a category enabled? (cheap: one load + and) */
bool enabled(unsigned category);

/** Enable/disable categories programmatically. */
void enable(unsigned categories);
void disable(unsigned categories);

/** Parse a comma-separated category list ("hdtl,ddmu", "all"). */
unsigned parseCategories(const std::string &list);

/** Emit one trace line (used by the macro; honors enablement). */
void emit(unsigned category, const std::string &msg);

/** The category mask initialized from DG_TRACE at first use. */
unsigned activeMask();

} // namespace trace

/** Trace-point macro: evaluates its arguments only when enabled. */
#define dg_trace(category, ...) \
    do { \
        if (::depgraph::trace::enabled(category)) { \
            ::depgraph::trace::emit( \
                category, ::depgraph::detail::format(__VA_ARGS__)); \
        } \
    } while (0)

} // namespace depgraph

#endif // DEPGRAPH_COMMON_TRACE_HH
