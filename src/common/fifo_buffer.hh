/**
 * @file
 * Bounded FIFO with occupancy statistics.
 *
 * Models the FIFO Edge Buffer of the DepGraph engine (paper Fig. 7): the
 * HDTL pipeline pushes prefetched edges in, the core drains them through
 * DEP_fetch_edge(). The simulator uses occupancy to decide how much of
 * the prefetch latency is hidden.
 */

#ifndef DEPGRAPH_COMMON_FIFO_BUFFER_HH
#define DEPGRAPH_COMMON_FIFO_BUFFER_HH

#include <cstddef>
#include <deque>

#include "common/logging.hh"

namespace depgraph
{

template <typename T>
class FifoBuffer
{
  public:
    explicit FifoBuffer(std::size_t capacity)
        : cap_(capacity)
    {
        dg_assert(capacity > 0, "fifo needs capacity > 0");
    }

    bool empty() const { return q_.empty(); }
    bool full() const { return q_.size() >= cap_; }
    std::size_t size() const { return q_.size(); }
    std::size_t capacity() const { return cap_; }

    /** Push an element; returns false if the buffer is full. */
    bool
    tryPush(const T &v)
    {
        if (full())
            return false;
        q_.push_back(v);
        ++pushes_;
        occupancySum_ += q_.size();
        return true;
    }

    /** Pop the oldest element; panics if empty. */
    T
    pop()
    {
        dg_assert(!empty(), "pop from empty fifo");
        T v = q_.front();
        q_.pop_front();
        return v;
    }

    const T &
    front() const
    {
        dg_assert(!empty(), "front of empty fifo");
        return q_.front();
    }

    void clear() { q_.clear(); }

    /** Total pushes observed (for stats). */
    std::size_t pushes() const { return pushes_; }

    /** Mean occupancy observed at push time. */
    double
    meanOccupancy() const
    {
        return pushes_ ? static_cast<double>(occupancySum_) / pushes_ : 0.0;
    }

  private:
    std::deque<T> q_;
    std::size_t cap_;
    std::size_t pushes_ = 0;
    std::size_t occupancySum_ = 0;
};

} // namespace depgraph

#endif // DEPGRAPH_COMMON_FIFO_BUFFER_HH
