#include "obs/slowlog.hh"

#include <cstdio>
#include <sstream>

#include "obs/span.hh"

namespace depgraph::obs
{

namespace
{

void
appendJsonString(std::ostringstream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\r': os << "\\r"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

SlowLog::SlowLog(std::size_t capacity)
    : capacity_(capacity)
{}

void
SlowLog::setCapacity(std::size_t capacity)
{
    std::lock_guard lk(mu_);
    capacity_ = capacity;
    while (entries_.size() > capacity_)
        entries_.pop_front();
}

std::size_t
SlowLog::capacity() const
{
    std::lock_guard lk(mu_);
    return capacity_;
}

void
SlowLog::append(SlowEntry entry)
{
    std::lock_guard lk(mu_);
    ++totalAppended_;
    if (capacity_ == 0)
        return;
    entries_.push_back(std::move(entry));
    while (entries_.size() > capacity_)
        entries_.pop_front();
}

std::vector<SlowEntry>
SlowLog::snapshot() const
{
    std::lock_guard lk(mu_);
    return {entries_.begin(), entries_.end()};
}

std::string
SlowLog::renderJsonLines() const
{
    const auto entries = snapshot();
    std::ostringstream os;
    for (const auto &e : entries) {
        os << "{\"ts_unix_ms\":" << e.unixMs << ",\"trace\":\""
           << span::formatTraceId(e.traceId)
           << "\",\"total_us\":" << e.totalUs
           << ",\"trace_committed\":"
           << (e.traceCommitted ? "true" : "false") << ",\"verb\":";
        appendJsonString(os, e.verb);
        os << ",\"request\":";
        appendJsonString(os, e.request);
        os << ",\"stages\":{";
        bool first = true;
        for (const auto &[name, value] : e.stages) {
            if (!first)
                os << ',';
            first = false;
            appendJsonString(os, name);
            os << ':' << value;
        }
        os << "}}\n";
    }
    return os.str();
}

std::uint64_t
SlowLog::totalAppended() const
{
    std::lock_guard lk(mu_);
    return totalAppended_;
}

std::size_t
SlowLog::size() const
{
    std::lock_guard lk(mu_);
    return entries_.size();
}

void
SlowLog::clear()
{
    std::lock_guard lk(mu_);
    entries_.clear();
    totalAppended_ = 0;
}

SlowLog &
slowLog()
{
    static SlowLog log;
    return log;
}

} // namespace depgraph::obs
