#include "obs/json.hh"

#include <cctype>
#include <cstdlib>

namespace depgraph::obs::json
{

Value
Value::makeBool(bool b)
{
    Value v;
    v.type_ = Type::Bool;
    v.bool_ = b;
    return v;
}

Value
Value::makeNumber(double d)
{
    Value v;
    v.type_ = Type::Number;
    v.number_ = d;
    return v;
}

Value
Value::makeString(std::string s)
{
    Value v;
    v.type_ = Type::String;
    v.string_ = std::move(s);
    return v;
}

Value
Value::makeArray(Array a)
{
    Value v;
    v.type_ = Type::Array;
    v.array_ = std::make_shared<Array>(std::move(a));
    return v;
}

Value
Value::makeObject(Object o)
{
    Value v;
    v.type_ = Type::Object;
    v.object_ = std::make_shared<Object>(std::move(o));
    return v;
}

namespace
{

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string err;

    bool
    fail(const std::string &msg)
    {
        if (err.empty())
            err = "at byte " + std::to_string(pos) + ": " + msg;
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size()
               && std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return fail(std::string("expected '") + c + "'");
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos)
            if (pos >= text.size() || text[pos] != *p)
                return fail(std::string("bad literal, expected ")
                            + word);
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("dangling escape");
            const char e = text[pos++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out += e;
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode (surrogate pairs are not stitched;
                // the renderers never emit them).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(Value &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            Object obj;
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                out = Value::makeObject(std::move(obj));
                return true;
            }
            while (true) {
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return false;
                Value v;
                if (!parseValue(v))
                    return false;
                obj.emplace(std::move(key), std::move(v));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                break;
            }
            if (!consume('}'))
                return false;
            out = Value::makeObject(std::move(obj));
            return true;
        }
        if (c == '[') {
            ++pos;
            Array arr;
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                out = Value::makeArray(std::move(arr));
                return true;
            }
            while (true) {
                Value v;
                if (!parseValue(v))
                    return false;
                arr.push_back(std::move(v));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                break;
            }
            if (!consume(']'))
                return false;
            out = Value::makeArray(std::move(arr));
            return true;
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value::makeString(std::move(s));
            return true;
        }
        if (c == 't') {
            if (!literal("true"))
                return false;
            out = Value::makeBool(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return false;
            out = Value::makeBool(false);
            return true;
        }
        if (c == 'n') {
            if (!literal("null"))
                return false;
            out = Value::makeNull();
            return true;
        }
        if (c == '-' || (c >= '0' && c <= '9')) {
            const char *start = text.c_str() + pos;
            char *end = nullptr;
            const double d = std::strtod(start, &end);
            if (end == start)
                return fail("bad number");
            pos += static_cast<std::size_t>(end - start);
            out = Value::makeNumber(d);
            return true;
        }
        return fail("unexpected character");
    }
};

} // namespace

std::optional<Value>
parse(const std::string &text, std::string *error)
{
    Parser p{text, 0, {}};
    Value v;
    if (!p.parseValue(v)) {
        if (error)
            *error = p.err;
        return std::nullopt;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        p.fail("trailing garbage");
        if (error)
            *error = p.err;
        return std::nullopt;
    }
    return v;
}

} // namespace depgraph::obs::json
