#include "obs/metrics.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace depgraph::obs
{

namespace
{

/** Label sets compare equal irrespective of declaration order. */
Labels
canonical(Labels labels)
{
    std::sort(labels.begin(), labels.end());
    return labels;
}

const char *
kindName(MetricKind k)
{
    switch (k) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

/** `{k="v",...}` or empty; `extra` appends one more pair (le=...). */
std::string
labelBlock(const Labels &labels, const std::string &extra = {})
{
    if (labels.empty() && extra.empty())
        return "";
    std::ostringstream os;
    os << '{';
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            os << ',';
        first = false;
        os << k << "=\"" << escapeLabelValue(v) << '"';
    }
    if (!extra.empty()) {
        if (!first)
            os << ',';
        os << extra;
    }
    os << '}';
    return os.str();
}

/** JSON string escaping for names/labels (control chars, quote, \\). */
std::string
jsonEscape(const std::string &s)
{
    std::ostringstream os;
    for (const char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    return os.str();
}

} // namespace

std::string
escapeLabelValue(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
escapeHelpText(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

const char *
buildVersion()
{
#ifdef DG_GIT_DESCRIBE
    return DG_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

const char *
buildCompiler()
{
#ifdef __VERSION__
    return __VERSION__;
#else
    return "unknown";
#endif
}

void
publishBuildInfo(Registry &reg, const std::string &simd_isa)
{
    reg.gauge("dg_build_info",
              "Constant 1; build attribution rides in the labels",
              {{"version", buildVersion()},
               {"compiler", buildCompiler()},
               {"simd", simd_isa}})
        .set(1.0);
}

Registry::Instance &
Registry::instance(const std::string &name, const std::string &help,
                   MetricKind kind, Labels labels)
{
    labels = canonical(std::move(labels));
    std::lock_guard lk(mu_);
    for (auto &fam : families_) {
        if (fam.name != name)
            continue;
        if (fam.kind != kind)
            dg_panic("metric '", name, "' re-registered as ",
                     kindName(kind), " but is a ", kindName(fam.kind));
        for (auto &inst : fam.instances)
            if (inst.labels == labels)
                return inst;
        fam.instances.emplace_back();
        fam.instances.back().labels = std::move(labels);
        return fam.instances.back();
    }
    families_.push_back({name, help, kind, {}});
    families_.back().instances.emplace_back();
    families_.back().instances.back().labels = std::move(labels);
    return families_.back().instances.back();
}

Counter &
Registry::counter(const std::string &name, const std::string &help,
                  Labels labels)
{
    return instance(name, help, MetricKind::Counter, std::move(labels))
        .counter;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help,
                Labels labels)
{
    return instance(name, help, MetricKind::Gauge, std::move(labels))
        .gauge;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help,
                    Labels labels)
{
    return instance(name, help, MetricKind::Histogram,
                    std::move(labels))
        .histogram;
}

std::size_t
Registry::familyCount() const
{
    std::lock_guard lk(mu_);
    return families_.size();
}

std::string
Registry::renderPrometheus() const
{
    std::lock_guard lk(mu_);
    std::ostringstream os;
    for (const auto &fam : families_) {
        os << "# HELP " << fam.name << ' '
           << escapeHelpText(fam.help) << '\n';
        os << "# TYPE " << fam.name << ' ' << kindName(fam.kind)
           << '\n';
        for (const auto &inst : fam.instances) {
            switch (fam.kind) {
              case MetricKind::Counter:
                os << fam.name << labelBlock(inst.labels) << ' '
                   << inst.counter.value() << '\n';
                break;
              case MetricKind::Gauge:
                os << fam.name << labelBlock(inst.labels) << ' '
                   << inst.gauge.value() << '\n';
                break;
              case MetricKind::Histogram: {
                const auto &h = inst.histogram;
                std::uint64_t cum = 0;
                for (std::size_t k = 0; k < Histogram::kBuckets; ++k) {
                    cum += h.bucketCount(k);
                    // The overflow bucket only renders as +Inf below.
                    if (k + 1 == Histogram::kBuckets)
                        break;
                    os << fam.name << "_bucket"
                       << labelBlock(
                              inst.labels,
                              "le=\""
                                  + std::to_string(
                                      Histogram::bucketUpperBound(k))
                                  + "\"")
                       << ' ' << cum << '\n';
                }
                os << fam.name << "_bucket"
                   << labelBlock(inst.labels, "le=\"+Inf\"") << ' '
                   << h.count() << '\n';
                os << fam.name << "_sum" << labelBlock(inst.labels)
                   << ' ' << h.sum() << '\n';
                os << fam.name << "_count" << labelBlock(inst.labels)
                   << ' ' << h.count() << '\n';
                break;
              }
            }
        }
    }
    return os.str();
}

std::string
Registry::renderJson() const
{
    std::lock_guard lk(mu_);
    std::ostringstream os;
    os << '{';
    bool first_fam = true;
    for (const auto &fam : families_) {
        if (!first_fam)
            os << ',';
        first_fam = false;
        os << '"' << jsonEscape(fam.name) << "\":{\"type\":\""
           << kindName(fam.kind) << "\",\"help\":\""
           << jsonEscape(fam.help) << "\",\"values\":[";
        bool first_inst = true;
        for (const auto &inst : fam.instances) {
            if (!first_inst)
                os << ',';
            first_inst = false;
            os << "{\"labels\":{";
            bool first_lab = true;
            for (const auto &[k, v] : inst.labels) {
                if (!first_lab)
                    os << ',';
                first_lab = false;
                os << '"' << jsonEscape(k) << "\":\"" << jsonEscape(v)
                   << '"';
            }
            os << '}';
            switch (fam.kind) {
              case MetricKind::Counter:
                os << ",\"value\":" << inst.counter.value();
                break;
              case MetricKind::Gauge:
                os << ",\"value\":" << inst.gauge.value();
                break;
              case MetricKind::Histogram: {
                const auto &h = inst.histogram;
                os << ",\"count\":" << h.count() << ",\"sum\":"
                   << h.sum() << ",\"max\":" << h.max()
                   << ",\"p50\":" << h.quantileUpperBound(0.5)
                   << ",\"p99\":" << h.quantileUpperBound(0.99)
                   << ",\"buckets\":[";
                for (std::size_t k = 0; k < Histogram::kBuckets; ++k) {
                    if (k)
                        os << ',';
                    os << h.bucketCount(k);
                }
                os << ']';
                break;
              }
            }
            os << '}';
        }
        os << "]}";
    }
    os << '}';
    return os.str();
}

Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace depgraph::obs
