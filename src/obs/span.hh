/**
 * @file
 * Structured span tracing with Chrome trace_event JSON export.
 *
 * Each thread records events into its own fixed-capacity ring buffer
 * (oldest events are overwritten; the drop count is kept), so the hot
 * path never contends with other recorders. With tracing disabled the
 * cost of a trace point is one relaxed atomic load and a branch --
 * that is the invariant bench/obs_overhead.cc checks.
 *
 * Event vocabulary (mapping to the Chrome trace_event `ph` field):
 *  - Scoped / complete(): a named duration on the recording thread
 *    ("X" with ts + dur);
 *  - instant(): a point event ("i");
 *  - asyncBegin()/asyncEnd(): a duration spanning threads, stitched by
 *    id ("b"/"e") -- used for service request spans whose queue-wait
 *    happens on the submitting thread but whose execution happens on a
 *    worker. The id travels through the ThreadPool job queue.
 *
 * Name and category strings must be string literals (or otherwise
 * outlive the tracer): the recorder stores the pointers, not copies.
 * dump() renders everything recorded so far as a Chrome trace_event
 * JSON object loadable in about://tracing / ui.perfetto.dev.
 */

#ifndef DEPGRAPH_OBS_SPAN_HH
#define DEPGRAPH_OBS_SPAN_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace depgraph::obs::span
{

/** Is recording on? One relaxed load; the disabled-path branch. */
bool enabled();

/** Turn recording on/off process-wide. */
void setEnabled(bool on);

/** Microseconds since the process-wide trace epoch (steady clock). */
std::uint64_t nowMicros();

/** Fresh nonzero id for an async span. */
std::uint64_t newId();

/**
 * Record a complete span with an explicit start. `arg`/`argName`
 * attach one numeric argument shown in the trace viewer (pass
 * argName = nullptr for none).
 */
void complete(const char *cat, const char *name, std::uint64_t ts_us,
              std::uint64_t dur_us, const char *arg_name = nullptr,
              std::uint64_t arg = 0);

/** Record a point event at now. */
void instant(const char *cat, const char *name,
             const char *arg_name = nullptr, std::uint64_t arg = 0);

/** Async span endpoints, stitched across threads by `id`. */
void asyncBegin(const char *cat, const char *name, std::uint64_t id);
void asyncEnd(const char *cat, const char *name, std::uint64_t id);

/**
 * RAII complete-event recorder. Captures the enablement decision at
 * construction so a span is never half-recorded across a toggle.
 */
class Scoped
{
  public:
    Scoped(const char *cat, const char *name,
           const char *arg_name = nullptr, std::uint64_t arg = 0)
        : cat_(cat), name_(name), argName_(arg_name), arg_(arg),
          active_(enabled()), start_(active_ ? nowMicros() : 0)
    {}

    ~Scoped()
    {
        if (active_)
            complete(cat_, name_, start_, nowMicros() - start_,
                     argName_, arg_);
    }

    Scoped(const Scoped &) = delete;
    Scoped &operator=(const Scoped &) = delete;

  private:
    const char *cat_;
    const char *name_;
    const char *argName_;
    std::uint64_t arg_;
    bool active_;
    std::uint64_t start_;
};

/** Render everything recorded so far as Chrome trace_event JSON. */
std::string dumpChromeJson();

/** Drop all recorded events (dropped-event counters included). */
void clear();

/** Events lost to ring-buffer overwrite since the last clear(). */
std::uint64_t droppedEvents();

/** Events currently held across all thread buffers. */
std::size_t recordedEvents();

} // namespace depgraph::obs::span

#endif // DEPGRAPH_OBS_SPAN_HH
