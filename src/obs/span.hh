/**
 * @file
 * Structured span tracing with Chrome trace_event JSON export.
 *
 * Each thread records events into its own fixed-capacity ring buffer
 * (oldest events are overwritten; the drop count is kept), so the hot
 * path never contends with other recorders. With tracing disabled the
 * cost of a trace point is one relaxed atomic load, one thread-local
 * read and a branch -- that is the invariant bench/obs_overhead.cc
 * checks.
 *
 * Event vocabulary (mapping to the Chrome trace_event `ph` field):
 *  - Scoped / complete(): a named duration on the recording thread
 *    ("X" with ts + dur);
 *  - instant(): a point event ("i");
 *  - asyncBegin()/asyncEnd(): a duration spanning threads, stitched by
 *    id ("b"/"e") -- used for service request spans whose queue-wait
 *    happens on the submitting thread but whose execution happens on a
 *    worker. The id travels through the ThreadPool job queue.
 *
 * Per-request tracing (docs/OBSERVABILITY.md "Request tracing"):
 * beginRequest() opens a request-scoped scratch recorder identified by
 * a 64-bit trace id (minted, or supplied by the client so one request
 * stitches across shard processes). While a thread is bound to the
 * request via RequestScope, every trace point on that thread records
 * into the request's bounded scratch instead of the thread ring; the
 * scratch is committed to a process-wide ring at finishRequest() only
 * when the request was head-sampled (1-in-N, setSampling()) or ran
 * longer than the slow threshold -- so long-running services keep
 * per-request tracing on without drowning in events, and slow
 * outliers are always captured. Committed events carry the trace id
 * as an `args.trace` hex string in the JSON dump; tools/dgtrace merges
 * dumps from several shard processes on that key.
 *
 * Name and category strings must be string literals (or otherwise
 * outlive the tracer): the recorder stores the pointers, not copies.
 * dump() renders everything recorded so far as a Chrome trace_event
 * JSON object loadable in about://tracing / ui.perfetto.dev.
 */

#ifndef DEPGRAPH_OBS_SPAN_HH
#define DEPGRAPH_OBS_SPAN_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace depgraph::obs::span
{

/** Is process-wide record-everything tracing on? One relaxed load. */
bool enabled();

/** Turn record-everything tracing on/off process-wide. */
void setEnabled(bool on);

/** Is any trace point live on this thread -- either tracing is
 * enabled process-wide or the thread is bound to a request scratch
 * (RequestScope)? This is the disabled-path branch. */
bool active();

/** Microseconds since the process-wide trace epoch (steady clock). */
std::uint64_t nowMicros();

/** Wall-clock microseconds (unix epoch) of the trace epoch; dumped as
 * otherData.epochUnixUs so dgtrace can align shard processes. */
std::uint64_t epochUnixMicros();

/** Fresh nonzero id for an async span. */
std::uint64_t newId();

/**
 * Record a complete span with an explicit start. `arg`/`argName`
 * attach one numeric argument shown in the trace viewer (pass
 * argName = nullptr for none).
 */
void complete(const char *cat, const char *name, std::uint64_t ts_us,
              std::uint64_t dur_us, const char *arg_name = nullptr,
              std::uint64_t arg = 0);

/** Record a point event at now. */
void instant(const char *cat, const char *name,
             const char *arg_name = nullptr, std::uint64_t arg = 0);

/** Async span endpoints, stitched across threads by `id`. */
void asyncBegin(const char *cat, const char *name, std::uint64_t id);
void asyncEnd(const char *cat, const char *name, std::uint64_t id);

/**
 * RAII complete-event recorder. Captures the recording decision at
 * construction so a span is never half-recorded across a toggle.
 */
class Scoped
{
  public:
    Scoped(const char *cat, const char *name,
           const char *arg_name = nullptr, std::uint64_t arg = 0)
        : cat_(cat), name_(name), argName_(arg_name), arg_(arg),
          active_(active()), start_(active_ ? nowMicros() : 0)
    {}

    ~Scoped()
    {
        if (active_)
            complete(cat_, name_, start_, nowMicros() - start_,
                     argName_, arg_);
    }

    Scoped(const Scoped &) = delete;
    Scoped &operator=(const Scoped &) = delete;

  private:
    const char *cat_;
    const char *name_;
    const char *argName_;
    std::uint64_t arg_;
    bool active_;
    std::uint64_t start_;
};

/* ---- Per-request tracing ---- */

/** Head-based 1-in-N sampling plus tail-based slow promotion. */
struct Sampling
{
    /** Commit every Nth request's scratch to the ring (0 = none). */
    std::uint32_t every = 0;
    /** Requests running at least this long commit regardless of the
     * head decision, and finishRequest() reports them slow (0 = no
     * promotion and no slow reporting). */
    std::uint64_t slowMicros = 0;
};

void setSampling(Sampling s);
Sampling sampling();

/** Per-request scratch recorder; opaque, see beginRequest(). */
class RequestTrace;

/** Stage names + values attributed to one request (queue_wait_us,
 * wal_sync_us, engine_rounds, ...). Names are literals. */
using StageList = std::vector<std::pair<const char *, std::uint64_t>>;

/**
 * Open a request trace. Returns nullptr when nothing would ever
 * observe it (tracing off, no sampling configured, no explicit id and
 * not head-sampled with tail promotion off) -- the null path costs one
 * atomic increment at most.
 *
 * @param explicit_id nonzero: the caller (a client via `trace=<id>` /
 *        X-DG-Trace) chose the id; the request is force-sampled so
 *        cross-shard traces never lose a leg to the sampler.
 */
std::shared_ptr<RequestTrace> beginRequest(std::uint64_t explicit_id = 0);

/** Bind this thread to a request scratch (restores the previous
 * binding on destruction; a null request is a no-op binding). */
class RequestScope
{
  public:
    explicit RequestScope(std::shared_ptr<RequestTrace> req);
    ~RequestScope();

    RequestScope(const RequestScope &) = delete;
    RequestScope &operator=(const RequestScope &) = delete;

  private:
    std::shared_ptr<RequestTrace> prev_;
    bool bound_;
};

/** The request this thread is bound to (nullptr outside a scope). */
std::shared_ptr<RequestTrace> currentRequest();

/** Trace id of the bound request (0 when unbound). */
std::uint64_t currentTraceId();

/** Attribute a stage value to the bound request (no-op unbound). */
void addRequestStage(const char *name, std::uint64_t value);

/** What finishRequest() decided and accumulated. */
struct RequestSummary
{
    bool traced = false;      ///< a scratch existed at all
    bool committed = false;   ///< events published to the ring
    bool slow = false;        ///< exceeded Sampling::slowMicros
    bool headSampled = false;
    std::uint64_t traceId = 0;
    std::uint64_t totalMicros = 0;
    std::uint64_t scratchDropped = 0; ///< events past the scratch cap
    StageList stages;
};

/**
 * Close a request trace: decide commit (head-sampled || slow), publish
 * the scratch to the committed ring if so, and return the stage
 * breakdown. Idempotent; a second call returns traced=false.
 */
RequestSummary finishRequest(const std::shared_ptr<RequestTrace> &req);

/** Events one request scratch holds before dropping (newest-dropped;
 * the drop count lands in RequestSummary::scratchDropped). */
std::size_t requestScratchCapacity();

/** Mint a nonzero 64-bit trace id (splitmix64 over a process seed). */
std::uint64_t newTraceId();

/** Canonical wire format: 16 lowercase hex digits, no 0x. */
std::string formatTraceId(std::uint64_t id);

/** Parse hex (optional 0x) trace id; false on malformed/zero. */
bool parseTraceId(std::string_view s, std::uint64_t &id);

/** Render everything recorded so far as Chrome trace_event JSON. */
std::string dumpChromeJson();

/** Drop all recorded events (dropped-event counters included). */
void clear();

/** Events lost to ring-buffer overwrite since the last clear(). */
std::uint64_t droppedEvents();

/** Events currently held across all thread buffers. */
std::size_t recordedEvents();

} // namespace depgraph::obs::span

#endif // DEPGRAPH_OBS_SPAN_HH
