#include "obs/span.hh"

#include <cctype>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <random>
#include <sstream>
#include <vector>

#include "obs/metrics.hh"

namespace depgraph::obs::span
{

namespace
{

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_nextId{1};

std::atomic<std::uint32_t> g_sampleEvery{0};
std::atomic<std::uint64_t> g_slowMicros{0};
std::atomic<std::uint64_t> g_sampleCounter{0};

struct EpochInfo
{
    std::chrono::steady_clock::time_point steady;
    std::uint64_t unixMicros;
};

/** Pins the steady time base AND captures the matching wall clock, so
 * dumps from different processes can be aligned (dgtrace). */
const EpochInfo &
epochInfo()
{
    static const EpochInfo e = [] {
        EpochInfo i;
        i.steady = std::chrono::steady_clock::now();
        i.unixMicros = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count());
        return i;
    }();
    return e;
}

struct Event
{
    const char *cat;
    const char *name;
    const char *argName; ///< nullptr = no argument
    std::uint64_t ts;    ///< microseconds since epoch()
    std::uint64_t dur;   ///< "X" events only
    std::uint64_t idOrArg;
    std::uint64_t trace; ///< request trace id; 0 = none
    char phase;          ///< 'X', 'i', 'b', 'e'
};

/** One thread's ring buffer. Guarded by its own mutex so a dump can
 * snapshot it while the owner keeps recording (uncontended in the
 * common case: the owner is the only regular locker). */
struct ThreadBuffer
{
    explicit ThreadBuffer(std::size_t capacity)
        : events(capacity)
    {}

    std::mutex mu;
    std::vector<Event> events;
    std::size_t next = 0;    ///< ring cursor
    std::size_t filled = 0;  ///< events.size() once wrapped
    std::uint64_t dropped = 0;
    unsigned tid = 0;

    void
    push(const Event &e)
    {
        std::lock_guard lk(mu);
        if (filled == events.size())
            ++dropped; // overwriting the oldest event
        events[next] = e;
        next = (next + 1) % events.size();
        if (filled < events.size())
            ++filled;
    }
};

constexpr std::size_t kPerThreadCapacity = 1 << 16;
constexpr std::size_t kScratchCapacity = 1024;
constexpr std::size_t kCommittedCapacity = 1 << 16;

struct BufferDirectory
{
    std::mutex mu;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    unsigned nextTid = 1;
};

BufferDirectory &
directory()
{
    static BufferDirectory d;
    return d;
}

ThreadBuffer &
localBuffer()
{
    // The shared_ptr in the directory keeps the buffer alive past
    // thread exit so late dumps still see its events.
    thread_local std::shared_ptr<ThreadBuffer> buf = [] {
        auto b = std::make_shared<ThreadBuffer>(kPerThreadCapacity);
        auto &dir = directory();
        std::lock_guard lk(dir.mu);
        b->tid = dir.nextTid++;
        dir.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

/** A committed scratch event keeps the tid of the thread that
 * originally recorded it, so cross-thread request flows render on
 * their true lanes. */
struct CommittedEvent
{
    Event event;
    unsigned tid;
};

/** Process-wide ring of request-committed events (mutex-guarded; the
 * commit path runs once per sampled/slow request, not per event). */
struct CommittedStore
{
    std::mutex mu;
    std::deque<CommittedEvent> events;
    std::uint64_t dropped = 0;

    void
    push(std::vector<CommittedEvent> &&batch)
    {
        std::lock_guard lk(mu);
        for (auto &e : batch)
            events.push_back(std::move(e));
        while (events.size() > kCommittedCapacity) {
            events.pop_front();
            ++dropped;
        }
    }
};

CommittedStore &
committedStore()
{
    static CommittedStore s;
    return s;
}

std::string
jsonEscape(const char *s)
{
    std::string out;
    for (; *s; ++s) {
        if (*s == '"' || *s == '\\')
            out += '\\';
        out += *s;
    }
    return out;
}

} // namespace

/**
 * Bounded per-request event scratch + stage accumulator. Multiple
 * threads touch one request sequentially (dispatcher -> worker ->
 * dispatcher), but a light mutex keeps it safe under any interleaving
 * (and visible to TSan).
 */
class RequestTrace
{
  public:
    RequestTrace(std::uint64_t trace_id, bool head_sampled,
                 bool record_events)
        : traceId_(trace_id), headSampled_(head_sampled),
          recordEvents_(record_events), startUs_(nowMicros())
    {}

    void
    push(const Event &e, unsigned tid)
    {
        if (!recordEvents_)
            return;
        std::lock_guard lk(mu_);
        if (events_.size() >= kScratchCapacity) {
            ++dropped_;
            return; // newest-dropped: the request's start is the story
        }
        events_.push_back({e, tid});
    }

    void
    addStage(const char *name, std::uint64_t value)
    {
        std::lock_guard lk(mu_);
        stages_.emplace_back(name, value);
    }

    std::uint64_t traceId() const { return traceId_; }
    bool headSampled() const { return headSampled_; }
    std::uint64_t startUs() const { return startUs_; }

    /** One-shot close; fills the summary and hands out the events to
     * commit (empty when the request should not be published). */
    bool
    finish(std::uint64_t slow_us, RequestSummary &out,
           std::vector<CommittedEvent> &to_commit)
    {
        std::lock_guard lk(mu_);
        if (finished_)
            return false;
        finished_ = true;
        out.traced = true;
        out.traceId = traceId_;
        out.headSampled = headSampled_;
        out.totalMicros = nowMicros() - startUs_;
        out.scratchDropped = dropped_;
        out.slow = slow_us > 0 && out.totalMicros >= slow_us;
        out.committed = headSampled_ || out.slow;
        stages_.emplace_back("total_us", out.totalMicros);
        out.stages = stages_;
        if (out.committed && !events_.empty()) {
            to_commit = std::move(events_);
            for (auto &ce : to_commit)
                ce.event.trace = traceId_;
        }
        events_.clear();
        return true;
    }

  private:
    mutable std::mutex mu_;
    std::vector<CommittedEvent> events_;
    StageList stages_;
    std::uint64_t dropped_ = 0;
    const std::uint64_t traceId_;
    const bool headSampled_;
    const bool recordEvents_;
    const std::uint64_t startUs_;
    bool finished_ = false;
};

namespace
{

thread_local std::shared_ptr<RequestTrace> tl_request;

void
record(char phase, const char *cat, const char *name,
       std::uint64_t ts, std::uint64_t dur, const char *arg_name,
       std::uint64_t id_or_arg)
{
    const Event e{cat, name, arg_name, ts, dur, id_or_arg, 0, phase};
    if (RequestTrace *rt = tl_request.get()) {
        // Bound to a request: events go to its scratch (committed or
        // discarded at finishRequest), never duplicated into the ring.
        rt->push(e, localBuffer().tid);
        return;
    }
    localBuffer().push(e);
}

} // namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    if (on)
        epochInfo(); // pin the time base before the first event
    g_enabled.store(on, std::memory_order_relaxed);
}

bool
active()
{
    return enabled() || tl_request.get() != nullptr;
}

std::uint64_t
nowMicros()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epochInfo().steady)
            .count());
}

std::uint64_t
epochUnixMicros()
{
    return epochInfo().unixMicros;
}

std::uint64_t
newId()
{
    return g_nextId.fetch_add(1, std::memory_order_relaxed);
}

void
complete(const char *cat, const char *name, std::uint64_t ts_us,
         std::uint64_t dur_us, const char *arg_name, std::uint64_t arg)
{
    if (!active())
        return;
    record('X', cat, name, ts_us, dur_us, arg_name, arg);
}

void
instant(const char *cat, const char *name, const char *arg_name,
        std::uint64_t arg)
{
    if (!active())
        return;
    record('i', cat, name, nowMicros(), 0, arg_name, arg);
}

void
asyncBegin(const char *cat, const char *name, std::uint64_t id)
{
    if (!active())
        return;
    record('b', cat, name, nowMicros(), 0, nullptr, id);
}

void
asyncEnd(const char *cat, const char *name, std::uint64_t id)
{
    if (!active())
        return;
    record('e', cat, name, nowMicros(), 0, nullptr, id);
}

void
setSampling(Sampling s)
{
    if (s.every || s.slowMicros)
        epochInfo();
    g_sampleEvery.store(s.every, std::memory_order_relaxed);
    g_slowMicros.store(s.slowMicros, std::memory_order_relaxed);
}

Sampling
sampling()
{
    Sampling s;
    s.every = g_sampleEvery.load(std::memory_order_relaxed);
    s.slowMicros = g_slowMicros.load(std::memory_order_relaxed);
    return s;
}

std::shared_ptr<RequestTrace>
beginRequest(std::uint64_t explicit_id)
{
    const auto every = g_sampleEvery.load(std::memory_order_relaxed);
    const auto slow_us = g_slowMicros.load(std::memory_order_relaxed);
    if (!explicit_id && !enabled() && every == 0 && slow_us == 0)
        return nullptr;

    bool head = explicit_id != 0 || enabled();
    if (!head && every != 0)
        head = g_sampleCounter.fetch_add(1, std::memory_order_relaxed)
                % every
            == 0;
    // A request nobody will ever look at (not sampled, and no slow
    // threshold that could still promote it) costs nothing further.
    if (!head && slow_us == 0)
        return nullptr;
    epochInfo();
    const bool record_events = head || slow_us > 0;
    return std::make_shared<RequestTrace>(
        explicit_id ? explicit_id : newTraceId(), head, record_events);
}

RequestScope::RequestScope(std::shared_ptr<RequestTrace> req)
    : bound_(req != nullptr)
{
    if (bound_) {
        prev_ = std::move(tl_request);
        tl_request = std::move(req);
    }
}

RequestScope::~RequestScope()
{
    if (bound_)
        tl_request = std::move(prev_);
}

std::shared_ptr<RequestTrace>
currentRequest()
{
    return tl_request;
}

std::uint64_t
currentTraceId()
{
    const RequestTrace *rt = tl_request.get();
    return rt ? rt->traceId() : 0;
}

void
addRequestStage(const char *name, std::uint64_t value)
{
    if (RequestTrace *rt = tl_request.get())
        rt->addStage(name, value);
}

RequestSummary
finishRequest(const std::shared_ptr<RequestTrace> &req)
{
    RequestSummary out;
    if (!req)
        return out;
    std::vector<CommittedEvent> to_commit;
    if (!req->finish(g_slowMicros.load(std::memory_order_relaxed), out,
                     to_commit))
        return RequestSummary{}; // double finish
    if (!to_commit.empty())
        committedStore().push(std::move(to_commit));
    return out;
}

std::size_t
requestScratchCapacity()
{
    return kScratchCapacity;
}

std::uint64_t
newTraceId()
{
    // splitmix64 over a per-process random seed + counter: ids from
    // different shard processes must not collide in a merged trace.
    static const std::uint64_t seed = [] {
        std::random_device rd;
        return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    }();
    std::uint64_t z =
        seed + 0x9e3779b97f4a7c15ull
        * g_nextId.fetch_add(1, std::memory_order_relaxed);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return z ? z : 1;
}

std::string
formatTraceId(std::uint64_t id)
{
    static const char *hex = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = hex[id & 0xf];
        id >>= 4;
    }
    return out;
}

bool
parseTraceId(std::string_view s, std::uint64_t &id)
{
    if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X'))
        s.remove_prefix(2);
    if (s.empty() || s.size() > 16)
        return false;
    std::uint64_t v = 0;
    for (const char c : s) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            v |= static_cast<std::uint64_t>(c - 'A' + 10);
        else
            return false;
    }
    if (v == 0)
        return false;
    id = v;
    return true;
}

namespace
{

void
renderEvent(std::ostringstream &os, const Event &e, unsigned tid,
            bool &first)
{
    if (!first)
        os << ',';
    first = false;
    os << "{\"name\":\"" << jsonEscape(e.name) << "\",\"cat\":\""
       << jsonEscape(e.cat) << "\",\"ph\":\"" << e.phase
       << "\",\"ts\":" << e.ts << ",\"pid\":1,\"tid\":" << tid;
    if (e.phase == 'X')
        os << ",\"dur\":" << e.dur;
    if (e.phase == 'b' || e.phase == 'e')
        os << ",\"id\":" << e.idOrArg;
    const bool has_arg =
        e.phase != 'b' && e.phase != 'e' && e.argName != nullptr;
    if (has_arg || e.trace) {
        os << ",\"args\":{";
        bool first_arg = true;
        if (has_arg) {
            os << '"' << jsonEscape(e.argName) << "\":" << e.idOrArg;
            first_arg = false;
        }
        if (e.trace) {
            if (!first_arg)
                os << ',';
            os << "\"trace\":\"" << formatTraceId(e.trace) << '"';
        }
        os << '}';
    }
    os << '}';
}

} // namespace

std::string
dumpChromeJson()
{
    std::vector<std::shared_ptr<ThreadBuffer>> bufs;
    {
        auto &dir = directory();
        std::lock_guard lk(dir.mu);
        bufs = dir.buffers;
    }

    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const auto &b : bufs) {
        std::lock_guard lk(b->mu);
        // Oldest-first: the ring cursor is the oldest slot once full.
        const std::size_t n = b->filled;
        const std::size_t start =
            n == b->events.size() ? b->next : 0;
        for (std::size_t i = 0; i < n; ++i)
            renderEvent(os,
                        b->events[(start + i) % b->events.size()],
                        b->tid, first);
    }
    {
        auto &store = committedStore();
        std::lock_guard lk(store.mu);
        for (const auto &ce : store.events)
            renderEvent(os, ce.event, ce.tid, first);
    }
    os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
       << "\"epochUnixUs\":" << epochUnixMicros() << ",\"build\":\""
       << jsonEscape(buildVersion()) << "\"}}";
    return os.str();
}

void
clear()
{
    {
        auto &dir = directory();
        std::lock_guard lk(dir.mu);
        for (const auto &b : dir.buffers) {
            std::lock_guard blk(b->mu);
            b->next = 0;
            b->filled = 0;
            b->dropped = 0;
        }
    }
    auto &store = committedStore();
    std::lock_guard lk(store.mu);
    store.events.clear();
    store.dropped = 0;
}

std::uint64_t
droppedEvents()
{
    std::uint64_t total = 0;
    {
        auto &dir = directory();
        std::lock_guard lk(dir.mu);
        for (const auto &b : dir.buffers) {
            std::lock_guard blk(b->mu);
            total += b->dropped;
        }
    }
    auto &store = committedStore();
    std::lock_guard lk(store.mu);
    return total + store.dropped;
}

std::size_t
recordedEvents()
{
    std::size_t total = 0;
    {
        auto &dir = directory();
        std::lock_guard lk(dir.mu);
        for (const auto &b : dir.buffers) {
            std::lock_guard blk(b->mu);
            total += b->filled;
        }
    }
    auto &store = committedStore();
    std::lock_guard lk(store.mu);
    return total + store.events.size();
}

} // namespace depgraph::obs::span
