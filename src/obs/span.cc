#include "obs/span.hh"

#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace depgraph::obs::span
{

namespace
{

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_nextId{1};

std::chrono::steady_clock::time_point
epoch()
{
    static const auto t0 = std::chrono::steady_clock::now();
    return t0;
}

struct Event
{
    const char *cat;
    const char *name;
    const char *argName; ///< nullptr = no argument
    std::uint64_t ts;    ///< microseconds since epoch()
    std::uint64_t dur;   ///< "X" events only
    std::uint64_t idOrArg;
    char phase; ///< 'X', 'i', 'b', 'e'
};

/** One thread's ring buffer. Guarded by its own mutex so a dump can
 * snapshot it while the owner keeps recording (uncontended in the
 * common case: the owner is the only regular locker). */
struct ThreadBuffer
{
    explicit ThreadBuffer(std::size_t capacity)
        : events(capacity)
    {}

    std::mutex mu;
    std::vector<Event> events;
    std::size_t next = 0;    ///< ring cursor
    std::size_t filled = 0;  ///< events.size() once wrapped
    std::uint64_t dropped = 0;
    unsigned tid = 0;

    void
    push(const Event &e)
    {
        std::lock_guard lk(mu);
        if (filled == events.size())
            ++dropped; // overwriting the oldest event
        events[next] = e;
        next = (next + 1) % events.size();
        if (filled < events.size())
            ++filled;
    }
};

constexpr std::size_t kPerThreadCapacity = 1 << 16;

struct BufferDirectory
{
    std::mutex mu;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    unsigned nextTid = 1;
};

BufferDirectory &
directory()
{
    static BufferDirectory d;
    return d;
}

ThreadBuffer &
localBuffer()
{
    // The shared_ptr in the directory keeps the buffer alive past
    // thread exit so late dumps still see its events.
    thread_local std::shared_ptr<ThreadBuffer> buf = [] {
        auto b = std::make_shared<ThreadBuffer>(kPerThreadCapacity);
        auto &dir = directory();
        std::lock_guard lk(dir.mu);
        b->tid = dir.nextTid++;
        dir.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

void
record(char phase, const char *cat, const char *name,
       std::uint64_t ts, std::uint64_t dur, const char *arg_name,
       std::uint64_t id_or_arg)
{
    localBuffer().push(
        Event{cat, name, arg_name, ts, dur, id_or_arg, phase});
}

std::string
jsonEscape(const char *s)
{
    std::string out;
    for (; *s; ++s) {
        if (*s == '"' || *s == '\\')
            out += '\\';
        out += *s;
    }
    return out;
}

} // namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    if (on)
        epoch(); // pin the time base before the first event
    g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t
nowMicros()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch())
            .count());
}

std::uint64_t
newId()
{
    return g_nextId.fetch_add(1, std::memory_order_relaxed);
}

void
complete(const char *cat, const char *name, std::uint64_t ts_us,
         std::uint64_t dur_us, const char *arg_name, std::uint64_t arg)
{
    if (!enabled())
        return;
    record('X', cat, name, ts_us, dur_us, arg_name, arg);
}

void
instant(const char *cat, const char *name, const char *arg_name,
        std::uint64_t arg)
{
    if (!enabled())
        return;
    record('i', cat, name, nowMicros(), 0, arg_name, arg);
}

void
asyncBegin(const char *cat, const char *name, std::uint64_t id)
{
    if (!enabled())
        return;
    record('b', cat, name, nowMicros(), 0, nullptr, id);
}

void
asyncEnd(const char *cat, const char *name, std::uint64_t id)
{
    if (!enabled())
        return;
    record('e', cat, name, nowMicros(), 0, nullptr, id);
}

std::string
dumpChromeJson()
{
    std::vector<std::shared_ptr<ThreadBuffer>> bufs;
    {
        auto &dir = directory();
        std::lock_guard lk(dir.mu);
        bufs = dir.buffers;
    }

    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const auto &b : bufs) {
        std::lock_guard lk(b->mu);
        // Oldest-first: the ring cursor is the oldest slot once full.
        const std::size_t n = b->filled;
        const std::size_t start =
            n == b->events.size() ? b->next : 0;
        for (std::size_t i = 0; i < n; ++i) {
            const Event &e =
                b->events[(start + i) % b->events.size()];
            if (!first)
                os << ',';
            first = false;
            os << "{\"name\":\"" << jsonEscape(e.name)
               << "\",\"cat\":\"" << jsonEscape(e.cat)
               << "\",\"ph\":\"" << e.phase << "\",\"ts\":" << e.ts
               << ",\"pid\":1,\"tid\":" << b->tid;
            if (e.phase == 'X')
                os << ",\"dur\":" << e.dur;
            if (e.phase == 'b' || e.phase == 'e')
                os << ",\"id\":" << e.idOrArg;
            else if (e.argName)
                os << ",\"args\":{\"" << jsonEscape(e.argName)
                   << "\":" << e.idOrArg << '}';
            os << '}';
        }
    }
    os << "],\"displayTimeUnit\":\"ms\"}";
    return os.str();
}

void
clear()
{
    auto &dir = directory();
    std::lock_guard lk(dir.mu);
    for (const auto &b : dir.buffers) {
        std::lock_guard blk(b->mu);
        b->next = 0;
        b->filled = 0;
        b->dropped = 0;
    }
}

std::uint64_t
droppedEvents()
{
    auto &dir = directory();
    std::lock_guard lk(dir.mu);
    std::uint64_t total = 0;
    for (const auto &b : dir.buffers) {
        std::lock_guard blk(b->mu);
        total += b->dropped;
    }
    return total;
}

std::size_t
recordedEvents()
{
    auto &dir = directory();
    std::lock_guard lk(dir.mu);
    std::size_t total = 0;
    for (const auto &b : dir.buffers) {
        std::lock_guard blk(b->mu);
        total += b->filled;
    }
    return total;
}

} // namespace depgraph::obs::span
