/**
 * @file
 * Minimal recursive-descent JSON parser.
 *
 * Exists so the observability tests can round-trip the Chrome-trace
 * and metrics JSON renderers through a real parser without an external
 * dependency. Supports the full JSON value grammar (objects, arrays,
 * strings with escapes, numbers, booleans, null); numbers are held as
 * double, which is exact for the integer magnitudes the renderers
 * emit. Not a streaming parser; intended for test-sized documents.
 */

#ifndef DEPGRAPH_OBS_JSON_HH
#define DEPGRAPH_OBS_JSON_HH

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace depgraph::obs::json
{

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Value() = default;

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool() const { return bool_; }
    double asNumber() const { return number_; }
    const std::string &asString() const { return string_; }
    const Array &asArray() const { return *array_; }
    const Object &asObject() const { return *object_; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *
    find(const std::string &key) const
    {
        if (!isObject())
            return nullptr;
        const auto it = object_->find(key);
        return it == object_->end() ? nullptr : &it->second;
    }

    static Value makeNull() { return Value(); }
    static Value makeBool(bool b);
    static Value makeNumber(double d);
    static Value makeString(std::string s);
    static Value makeArray(Array a);
    static Value makeObject(Object o);

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::shared_ptr<Array> array_;
    std::shared_ptr<Object> object_;
};

/**
 * Parse a complete JSON document. Empty optional on any syntax error
 * (including trailing garbage); `error`, when non-null, receives a
 * byte offset + message describing the first failure.
 */
std::optional<Value> parse(const std::string &text,
                           std::string *error = nullptr);

} // namespace depgraph::obs::json

#endif // DEPGRAPH_OBS_JSON_HH
