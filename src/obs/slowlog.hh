/**
 * @file
 * Slow-query log: a bounded in-memory ring of structured entries, one
 * per request that ran past the configured slow threshold
 * (obs::span::Sampling::slowMicros). Exposed by the `slowlog` protocol
 * verb and `GET /debug/slowlog`; schema in docs/OBSERVABILITY.md
 * ("Slow-query log").
 */

#ifndef DEPGRAPH_OBS_SLOWLOG_HH
#define DEPGRAPH_OBS_SLOWLOG_HH

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace depgraph::obs
{

/** One over-threshold request. */
struct SlowEntry
{
    std::uint64_t unixMs = 0;   ///< wall-clock completion time
    std::uint64_t traceId = 0;  ///< request trace id (nonzero)
    std::uint64_t totalUs = 0;  ///< end-to-end latency
    bool traceCommitted = false; ///< spans published to the trace ring
    std::string verb;            ///< protocol verb ("query", ...)
    std::string request;         ///< request line, truncated
    /** Stage attribution (queue_wait_us, wal_sync_us, engine_rounds,
     * edges_walked, ...); never empty -- total_us is always present. */
    std::vector<std::pair<std::string, std::uint64_t>> stages;
};

/**
 * Fixed-capacity ring of SlowEntry, oldest-evicted. Thread-safe; the
 * append path runs once per slow request, so a mutex is fine.
 */
class SlowLog
{
  public:
    explicit SlowLog(std::size_t capacity = 256);

    /** Resize; evicts oldest entries if shrinking. Capacity 0 keeps
     * nothing (appends still count in totalAppended()). */
    void setCapacity(std::size_t capacity);
    std::size_t capacity() const;

    void append(SlowEntry entry);

    /** Oldest-first copy of the retained entries. */
    std::vector<SlowEntry> snapshot() const;

    /** Retained entries as newline-delimited JSON objects, oldest
     * first (one `\n`-terminated object per line). */
    std::string renderJsonLines() const;

    /** Appends since construction/clear(), including evicted ones. */
    std::uint64_t totalAppended() const;

    std::size_t size() const;
    void clear();

  private:
    mutable std::mutex mu_;
    std::deque<SlowEntry> entries_;
    std::size_t capacity_;
    std::uint64_t totalAppended_ = 0;
};

/** Process-wide slow-query log. */
SlowLog &slowLog();

} // namespace depgraph::obs

#endif // DEPGRAPH_OBS_SLOWLOG_HH
