/**
 * @file
 * The metrics registry: named counters, gauges and power-of-two
 * histograms with labels, renderable as Prometheus text exposition or
 * JSON.
 *
 * Design rules:
 *  - The hot path is lock-free: a Counter/Gauge/Histogram reference
 *    obtained from a Registry is a stable pointer into deque-backed
 *    storage; incrementing it is a relaxed atomic op. The registry
 *    mutex is only taken on registration (find-or-create) and while
 *    rendering.
 *  - Metric families follow the Prometheus conventions documented in
 *    docs/OBSERVABILITY.md: `dg_` prefix, snake_case, `_total` suffix
 *    for counters, unit suffixes (`_us`, `_bytes`, `_cycles`).
 *  - Pre-existing atomic counters elsewhere in the codebase (e.g.
 *    service::Stats, runtime::RunMetrics) publish into the registry at
 *    report time via Counter::set() / Histogram::assignFrom() instead
 *    of being rewritten to live here; the registry is the export
 *    plane, not the only source of truth.
 */

#ifndef DEPGRAPH_OBS_METRICS_HH
#define DEPGRAPH_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace depgraph::obs
{

/** Label set attached to one metric instance ("graph" -> "g"). */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Monotonically increasing count. */
class Counter
{
  public:
    void
    inc(std::uint64_t d = 1)
    {
        v_.fetch_add(d, std::memory_order_relaxed);
    }

    /** Bridge publishing: overwrite with a value maintained elsewhere
     * (must itself be monotonic for Prometheus semantics to hold). */
    void
    set(std::uint64_t v)
    {
        v_.store(v, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** A value that can go up and down. */
class Gauge
{
  public:
    void
    set(double v)
    {
        v_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> v_{0.0};
};

/**
 * Power-of-two bucketed histogram: bucket k counts samples in
 * [2^k, 2^(k+1)) (bucket 0 additionally holds 0). Unitless; callers
 * pick the unit via the metric name (`_us`, `_cycles`, ...).
 *
 * The max tracker uses a CAS loop: a plain load-compare-store would
 * lose the larger of two concurrent record() calls that both read the
 * same stale maximum.
 */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 22; ///< up to ~2^22 ≈ 4.2M

    void
    record(std::uint64_t v)
    {
        buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
        auto prev = max_.load(std::memory_order_relaxed);
        while (v > prev
               && !max_.compare_exchange_weak(
                   prev, v, std::memory_order_relaxed)) {
        }
    }

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    std::uint64_t sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }
    std::uint64_t max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    bucketCount(std::size_t k) const
    {
        return buckets_[k].load(std::memory_order_relaxed);
    }

    /** Inclusive upper bound of bucket k (2^(k+1) - 1); the last
     * bucket is the overflow bucket and has no finite bound. */
    static std::uint64_t
    bucketUpperBound(std::size_t k)
    {
        return (std::uint64_t{1} << (k + 1)) - 1;
    }

    static std::size_t
    bucketOf(std::uint64_t v)
    {
        const std::size_t k = v == 0
            ? 0
            : static_cast<std::size_t>(std::bit_width(v) - 1);
        return k < kBuckets ? k : kBuckets - 1;
    }

    /** Upper bound of the bucket holding quantile q (0 < q <= 1). */
    std::uint64_t
    quantileUpperBound(double q) const
    {
        const auto total = count();
        if (total == 0)
            return 0;
        const auto rank = static_cast<std::uint64_t>(
            q * static_cast<double>(total));
        std::uint64_t seen = 0;
        for (std::size_t k = 0; k < kBuckets; ++k) {
            seen += bucketCount(k);
            if (seen > rank)
                return bucketUpperBound(k);
        }
        return max();
    }

    /** Bridge publishing: overwrite this histogram with a snapshot of
     * another (relaxed copies; monitoring-grade consistency). */
    void
    assignFrom(const Histogram &o)
    {
        for (std::size_t k = 0; k < kBuckets; ++k)
            buckets_[k].store(o.bucketCount(k),
                              std::memory_order_relaxed);
        count_.store(o.count(), std::memory_order_relaxed);
        sum_.store(o.sum(), std::memory_order_relaxed);
        max_.store(o.max(), std::memory_order_relaxed);
    }

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
};

enum class MetricKind
{
    Counter,
    Gauge,
    Histogram,
};

/**
 * Find-or-create registry of metric families. A family is one name +
 * help + kind; each distinct label set under it is one instance.
 * Returned references stay valid for the registry's lifetime (deque
 * storage, nothing is ever erased).
 */
class Registry
{
  public:
    Counter &counter(const std::string &name, const std::string &help,
                     Labels labels = {});
    Gauge &gauge(const std::string &name, const std::string &help,
                 Labels labels = {});
    Histogram &histogram(const std::string &name,
                         const std::string &help, Labels labels = {});

    /** Prometheus text exposition format (version 0.0.4). */
    std::string renderPrometheus() const;

    /** The same content as a JSON object keyed by family name. */
    std::string renderJson() const;

    /** Families registered so far (diagnostics / tests). */
    std::size_t familyCount() const;

  private:
    struct Instance
    {
        Labels labels;
        Counter counter;
        Gauge gauge;
        Histogram histogram;
    };

    struct Family
    {
        std::string name;
        std::string help;
        MetricKind kind;
        std::deque<Instance> instances;
    };

    Instance &instance(const std::string &name, const std::string &help,
                       MetricKind kind, Labels labels);

    mutable std::mutex mu_;
    std::deque<Family> families_; ///< registration order
};

/** The process-wide default registry. */
Registry &registry();

/** Escape a Prometheus label value (backslash, quote, newline). */
std::string escapeLabelValue(const std::string &v);

/** Escape Prometheus HELP text (backslash, newline -- quotes are
 * legal in HELP and stay as-is). */
std::string escapeHelpText(const std::string &v);

/** The build's `git describe` string ("unknown" outside a git
 * checkout); baked in at configure time. */
const char *buildVersion();

/** Compiler identification string (__VERSION__). */
const char *buildCompiler();

/** Publish the `dg_build_info` gauge (constant 1; version, compiler
 * and active SIMD ISA ride as labels) so scraped artifacts are
 * attributable to a build. */
void publishBuildInfo(Registry &reg, const std::string &simd_isa);

} // namespace depgraph::obs

#endif // DEPGRAPH_OBS_METRICS_HH
