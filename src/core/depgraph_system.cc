#include "core/depgraph_system.hh"

#include "accel/accelerators.hh"
#include "common/logging.hh"
#include "runtime/parallel_engine.hh"
#include "runtime/sequential.hh"
#include "runtime/soft_engine.hh"
#include "sim/machine.hh"

namespace depgraph
{

const char *
solutionName(Solution s)
{
    switch (s) {
      case Solution::Sequential:
        return "Sequential";
      case Solution::Ligra:
        return "Ligra";
      case Solution::Mosaic:
        return "Mosaic";
      case Solution::Wonderland:
        return "Wonderland";
      case Solution::FBSGraph:
        return "FBSGraph";
      case Solution::LigraO:
        return "Ligra-o";
      case Solution::Hats:
        return "HATS";
      case Solution::Minnow:
        return "Minnow";
      case Solution::Phi:
        return "PHI";
      case Solution::DepGraphS:
        return "DepGraph-S";
      case Solution::DepGraphH:
        return "DepGraph-H";
      case Solution::DepGraphHNoHub:
        return "DepGraph-H-w";
      case Solution::Parallel:
        return "Parallel";
    }
    return "?";
}

Solution
solutionFromName(const std::string &name)
{
    // Not in allSolutions() (see the enum comment), so match it here.
    if (name == solutionName(Solution::Parallel))
        return Solution::Parallel;
    for (auto s : allSolutions())
        if (name == solutionName(s))
            return s;
    dg_fatal("unknown solution '", name, "'");
}

const std::vector<Solution> &
allSolutions()
{
    static const std::vector<Solution> all = {
        Solution::Sequential, Solution::Ligra,     Solution::Mosaic,
        Solution::Wonderland, Solution::FBSGraph,  Solution::LigraO,
        Solution::Hats,       Solution::Minnow,    Solution::Phi,
        Solution::DepGraphS,  Solution::DepGraphH,
        Solution::DepGraphHNoHub,
    };
    return all;
}

runtime::EnginePtr
makeEngine(Solution s, runtime::EngineOptions opt)
{
    switch (s) {
      case Solution::Sequential:
        return std::make_unique<runtime::SequentialEngine>(opt);
      case Solution::Ligra:
        return runtime::makeLigra(opt);
      case Solution::Mosaic:
        return runtime::makeMosaic(opt);
      case Solution::Wonderland:
        return runtime::makeWonderland(opt);
      case Solution::FBSGraph:
        return runtime::makeFbsGraph(opt);
      case Solution::LigraO:
        return runtime::makeLigraO(opt);
      case Solution::Hats:
        return accel::makeHats(opt);
      case Solution::Minnow:
        return accel::makeMinnow(opt);
      case Solution::Phi:
        return accel::makePhi(opt);
      case Solution::DepGraphS:
        return dep::makeDepGraphS(opt);
      case Solution::DepGraphH:
        return dep::makeDepGraphH(opt);
      case Solution::DepGraphHNoHub:
        return dep::makeDepGraphHNoHub(opt);
      case Solution::Parallel:
        return runtime::makeParallel(opt);
    }
    dg_panic("unhandled solution");
}

DepGraphSystem::DepGraphSystem(SystemConfig cfg)
    : cfg_(std::move(cfg))
{}

runtime::RunResult
DepGraphSystem::run(const graph::Graph &g, const std::string &algorithm,
                    Solution s)
{
    const auto alg = gas::makeAlgorithm(algorithm);
    return run(g, *alg, s);
}

runtime::RunResult
DepGraphSystem::run(const graph::Graph &g, gas::Algorithm &alg,
                    Solution s)
{
    return run(g, alg, s, nullptr, nullptr);
}

runtime::RunResult
DepGraphSystem::run(const graph::Graph &g, gas::Algorithm &alg,
                    Solution s,
                    const runtime::HubArtifacts *hub_seed,
                    runtime::HubArtifacts *hub_export)
{
    if (hub_export)
        hub_export->deps.clear();
    sim::Machine machine(cfg_.machine);
    auto opt = cfg_.engine;
    opt.hubSeed = hub_seed;
    opt.hubExport = hub_export;
    const auto engine = makeEngine(s, opt);
    return engine->run(g, alg, machine);
}

std::uint64_t
DepGraphSystem::minimalUpdates(const graph::Graph &g,
                               const std::string &algorithm) const
{
    const auto alg = gas::makeAlgorithm(algorithm);
    return runtime::SequentialEngine::countMinimalUpdates(g, *alg);
}

} // namespace depgraph
