/**
 * @file
 * DepGraphSystem: the library's top-level public API.
 *
 * One entry point runs any supported iterative graph algorithm on any
 * graph under any of the paper's execution solutions -- the software
 * baselines (Sequential, Ligra, Mosaic, Wonderland, FBSGraph,
 * Ligra-o), the competing accelerators (HATS, Minnow, PHI), and the
 * paper's contribution (DepGraph-S, DepGraph-H, DepGraph-H-w) -- on a
 * simulated many-core machine, returning converged vertex states plus
 * the full metric set (updates, utilization, time breakdown, memory
 * stats, energy).
 *
 * Typical use:
 * @code
 *   using namespace depgraph;
 *   auto g = graph::makeDataset("FS");
 *   DepGraphSystem sys;                         // Table II machine
 *   auto r = sys.run(g, "sssp", Solution::DepGraphH);
 *   std::cout << r.metrics.makespan << "\n";
 * @endcode
 */

#ifndef DEPGRAPH_CORE_DEPGRAPH_SYSTEM_HH
#define DEPGRAPH_CORE_DEPGRAPH_SYSTEM_HH

#include <string>
#include <vector>

#include "depgraph/executor.hh"
#include "gas/algorithms.hh"
#include "runtime/engine.hh"
#include "sim/params.hh"

namespace depgraph
{

/** Every execution solution evaluated in the paper. */
enum class Solution
{
    Sequential,
    Ligra,
    Mosaic,
    Wonderland,
    FBSGraph,
    LigraO,
    Hats,
    Minnow,
    Phi,
    DepGraphS,
    DepGraphH,
    DepGraphHNoHub, ///< DepGraph-H with the hub index disabled
    /** Native multi-threaded chain walking on host threads (wall-clock
     * makespan, no cycle model). Deliberately NOT in allSolutions():
     * the paper sweeps iterate that list and must not mix wall-clock
     * numbers into cycle tables. */
    Parallel,
};

const char *solutionName(Solution s);
Solution solutionFromName(const std::string &name);

/** All solutions, in a stable presentation order. */
const std::vector<Solution> &allSolutions();

/** Build the engine implementing a solution. */
runtime::EnginePtr makeEngine(Solution s,
                              runtime::EngineOptions opt = {});

struct SystemConfig
{
    sim::MachineParams machine;     ///< defaults = paper Table II
    runtime::EngineOptions engine;  ///< defaults = paper Sec. IV
};

class DepGraphSystem
{
  public:
    explicit DepGraphSystem(SystemConfig cfg = {});

    /** Run a named algorithm (pagerank/adsorption/katz/sssp/wcc/sswp)
     * under the given solution on a fresh machine instance. */
    runtime::RunResult run(const graph::Graph &g,
                           const std::string &algorithm, Solution s);

    /** Run a caller-constructed algorithm instance. */
    runtime::RunResult run(const graph::Graph &g, gas::Algorithm &alg,
                           Solution s);

    /**
     * Run with hub-index carry-over: warm-start the engine's hub index
     * from `hub_seed` (nullable) and export the entries this run
     * learned into `hub_export` (nullable, cleared first). Engines
     * without a hub index ignore both and leave `hub_export` empty.
     */
    runtime::RunResult run(const graph::Graph &g, gas::Algorithm &alg,
                           Solution s,
                           const runtime::HubArtifacts *hub_seed,
                           runtime::HubArtifacts *hub_export);

    /** u_s: update count of the minimal sequential schedule, for
     * effective-utilization metrics (r_e = u_s * U / u_d). */
    std::uint64_t minimalUpdates(const graph::Graph &g,
                                 const std::string &algorithm) const;

    const SystemConfig &config() const { return cfg_; }
    SystemConfig &config() { return cfg_; }

  private:
    SystemConfig cfg_;
};

} // namespace depgraph

#endif // DEPGRAPH_CORE_DEPGRAPH_SYSTEM_HH
