/**
 * @file
 * Automatic detection of the generalized-sum kind.
 *
 * Implements the paper's probe (Sec. III-B2): evaluate Accum(1, 1) at
 * initialization. A result of 2 means sum; 1 means min-or-max (then
 * Accum(1, 2) disambiguates); anything else means the algorithm is not
 * supported by the dependency transformation and DepGraph reports an
 * error so the user can disable the transformation.
 */

#ifndef DEPGRAPH_GAS_ACCUM_HH
#define DEPGRAPH_GAS_ACCUM_HH

#include <optional>

#include "gas/model.hh"

namespace depgraph::gas
{

/**
 * Probe the black-box accumOp of an algorithm.
 *
 * @return The detected kind, or std::nullopt when the generalized sum
 *         is neither sum nor min/max (transformation unsupported).
 */
std::optional<AccumKind> detectAccumKind(const Algorithm &alg);

/** Probe and cross-check against the declared accumKind(); fatal on a
 * mismatch (a mis-declared algorithm would silently corrupt results). */
AccumKind verifiedAccumKind(const Algorithm &alg);

} // namespace depgraph::gas

#endif // DEPGRAPH_GAS_ACCUM_HH
