#include "gas/incremental.hh"

#include <unordered_set>

#include "common/logging.hh"

namespace depgraph::gas
{

graph::Graph
applyInsertions(const graph::Graph &g,
                const std::vector<EdgeInsertion> &ins)
{
    VertexId n = g.numVertices();
    for (const auto &e : ins)
        n = std::max({n, e.src + 1, e.dst + 1});
    graph::Builder b(n);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e)
            b.addEdge(v, g.target(e), g.weight(e));
    for (const auto &e : ins)
        b.addEdge(e.src, e.dst, e.weight);
    return b.build(true);
}

std::vector<Value>
edgeInsertionDeltas(const graph::Graph &old_graph,
                    const graph::Graph &updated,
                    const std::vector<EdgeInsertion> &ins,
                    const std::vector<Value> &old_states,
                    Algorithm &alg)
{
    dg_assert(old_states.size() == old_graph.numVertices(),
              "old state vector size mismatch");
    const auto kind = alg.accumKind();
    std::vector<Value> inj(updated.numVertices(), alg.identity());

    if (kind == AccumKind::Sum) {
        // Affected sources: every vertex whose out-edge set changed.
        std::unordered_set<VertexId> sources;
        for (const auto &e : ins)
            sources.insert(e.src);

        // Retract the mass sent under the old edge functions...
        alg.prepare(old_graph);
        for (const auto u : sources) {
            if (u >= old_graph.numVertices())
                continue;
            const Value m = old_states[u]; // total delta applied at u
            if (m == 0.0)
                continue;
            for (EdgeId e = old_graph.edgeBegin(u);
                 e < old_graph.edgeEnd(u); ++e) {
                const auto f = alg.edgeFunc(old_graph, u, e);
                dg_assert(f.xi == 0.0 && f.isPureLinear(),
                          "sum-incremental needs homogeneous linear "
                          "edge functions");
                inj[old_graph.target(e)] -= f.mu * m;
            }
        }
        // ... and re-send it under the new ones (covers both the
        // renormalization of old edges and the brand-new edges).
        alg.prepare(updated);
        for (const auto u : sources) {
            const Value m =
                u < old_graph.numVertices() ? old_states[u] : 0.0;
            if (m == 0.0)
                continue;
            for (EdgeId e = updated.edgeBegin(u);
                 e < updated.edgeEnd(u); ++e) {
                const auto f = alg.edgeFunc(updated, u, e);
                inj[updated.target(e)] += f.mu * m;
            }
        }
        // New vertices (if any) start with their initial delta.
        for (VertexId v = old_graph.numVertices();
             v < updated.numVertices(); ++v) {
            inj[v] = applyAccum(kind, inj[v],
                                alg.initDelta(updated, v));
        }
        return inj;
    }

    // Min/max: the old fixpoint stays a valid bound; only the new
    // edges inject influence, which then propagates monotonically.
    alg.prepare(updated);
    for (const auto &e : ins) {
        const Value s = e.src < old_graph.numVertices()
            ? old_states[e.src]
            : alg.initDelta(updated, e.src);
        // Locate the inserted edge in the updated CSR (first matching
        // edge with this weight; parallel duplicates are equivalent).
        for (EdgeId k = updated.edgeBegin(e.src);
             k < updated.edgeEnd(e.src); ++k) {
            if (updated.target(k) == e.dst
                && updated.weight(k) == e.weight) {
                inj[e.dst] = applyAccum(
                    kind, inj[e.dst],
                    alg.edgeCompute(updated, e.src, k, s));
                break;
            }
        }
    }
    return inj;
}

} // namespace depgraph::gas
