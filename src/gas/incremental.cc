#include "gas/incremental.hh"

#include <deque>
#include <unordered_set>

#include "common/bitmap.hh"
#include "common/logging.hh"

namespace depgraph::gas
{

namespace
{

constexpr EdgeId kUnmatched = static_cast<EdgeId>(-1);

/**
 * Match each deletion to an edge id of g: request order, first
 * not-yet-claimed occurrence, exact-weight when the deletion carries
 * one. Both the graph rebuild and the delta computation use this, so
 * they always agree on WHICH parallel duplicate a deletion claims.
 */
std::vector<EdgeId>
matchDeletions(const graph::Graph &g,
               const std::vector<EdgeDeletion> &dels)
{
    std::vector<EdgeId> matched(dels.size(), kUnmatched);
    std::unordered_set<EdgeId> claimed;
    for (std::size_t i = 0; i < dels.size(); ++i) {
        const auto &d = dels[i];
        if (d.src >= g.numVertices())
            continue;
        for (EdgeId e = g.edgeBegin(d.src); e < g.edgeEnd(d.src);
             ++e) {
            if (g.target(e) != d.dst || claimed.count(e))
                continue;
            if (!d.matchesAnyWeight() && g.weight(e) != d.weight)
                continue;
            matched[i] = e;
            claimed.insert(e);
            break;
        }
    }
    return matched;
}

} // namespace

graph::Graph
applyInsertions(const graph::Graph &g,
                const std::vector<EdgeInsertion> &ins)
{
    return applyChurn(g, ins, {});
}

graph::Graph
applyDeletions(const graph::Graph &g,
               const std::vector<EdgeDeletion> &dels)
{
    return applyChurn(g, {}, dels);
}

graph::Graph
applyChurn(const graph::Graph &g,
           const std::vector<EdgeInsertion> &ins,
           const std::vector<EdgeDeletion> &dels)
{
    VertexId n = g.numVertices();
    for (const auto &e : ins)
        n = std::max({n, e.src + 1, e.dst + 1});

    const auto matched = matchDeletions(g, dels);
    std::unordered_set<EdgeId> removed;
    for (const auto e : matched)
        if (e != kUnmatched)
            removed.insert(e);

    graph::Builder b(n);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e)
            if (!removed.count(e))
                b.addEdge(v, g.target(e), g.weight(e));
    for (const auto &e : ins)
        b.addEdge(e.src, e.dst, e.weight);
    return b.build(true);
}

std::vector<Value>
edgeInsertionDeltas(const graph::Graph &old_graph,
                    const graph::Graph &updated,
                    const std::vector<EdgeInsertion> &ins,
                    const std::vector<Value> &old_states,
                    Algorithm &alg)
{
    auto states = old_states;
    return edgeChurnDeltas(old_graph, updated, ins, {}, states, alg);
}

std::vector<Value>
edgeDeletionDeltas(const graph::Graph &old_graph,
                   const graph::Graph &updated,
                   const std::vector<EdgeDeletion> &dels,
                   std::vector<Value> &states, Algorithm &alg)
{
    return edgeChurnDeltas(old_graph, updated, {}, dels, states, alg);
}

std::vector<Value>
edgeChurnDeltas(const graph::Graph &old_graph,
                const graph::Graph &updated,
                const std::vector<EdgeInsertion> &ins,
                const std::vector<EdgeDeletion> &dels,
                std::vector<Value> &states, Algorithm &alg)
{
    dg_assert(states.size() == old_graph.numVertices(),
              "old state vector size mismatch");
    const auto kind = alg.accumKind();
    const VertexId old_n = old_graph.numVertices();
    std::vector<Value> inj(updated.numVertices(), alg.identity());

    if (kind == AccumKind::Sum) {
        // Affected sources: every vertex whose out-edge set changed.
        // Deletions and insertions are symmetric here -- the diff of
        // the mass sent under the old vs. the new edge functions
        // covers the deleted edge's retraction (-f_old(m_u) at its old
        // dst), the out-degree renormalization at surviving neighbors,
        // and the brand-new edges, all at once.
        std::unordered_set<VertexId> sources;
        for (const auto &e : ins)
            sources.insert(e.src);
        for (const auto &d : dels)
            sources.insert(d.src);

        // Retract the mass sent under the old edge functions...
        alg.prepare(old_graph);
        for (const auto u : sources) {
            if (u >= old_n)
                continue;
            const Value m = states[u]; // total delta applied at u
            if (m == 0.0)
                continue;
            for (EdgeId e = old_graph.edgeBegin(u);
                 e < old_graph.edgeEnd(u); ++e) {
                const auto f = alg.edgeFunc(old_graph, u, e);
                dg_assert(f.xi == 0.0 && f.isPureLinear(),
                          "sum-incremental needs homogeneous linear "
                          "edge functions");
                inj[old_graph.target(e)] -= f.mu * m;
            }
        }
        // ... and re-send it under the new ones.
        alg.prepare(updated);
        for (const auto u : sources) {
            if (u >= updated.numVertices())
                continue;
            const Value m = u < old_n ? states[u] : 0.0;
            if (m == 0.0)
                continue;
            for (EdgeId e = updated.edgeBegin(u);
                 e < updated.edgeEnd(u); ++e) {
                const auto f = alg.edgeFunc(updated, u, e);
                inj[updated.target(e)] += f.mu * m;
            }
        }
        // New vertices (if any) start with their initial delta.
        states.resize(updated.numVertices());
        for (VertexId v = old_n; v < updated.numVertices(); ++v) {
            states[v] = alg.initState(updated, v);
            inj[v] = applyAccum(kind, inj[v],
                                alg.initDelta(updated, v));
        }
        return inj;
    }

    /* ---- Min/max accumulators. ---- */

    // Deletions first: find every vertex whose converged value may
    // have been SUPPORTED by a deleted edge (the edge's influence
    // achieved the vertex's fixpoint value). Their old states are no
    // longer valid bounds, and neither are those of anything
    // downstream, so the whole closure re-seeds and re-propagates.
    alg.prepare(old_graph);
    const Value tol = alg.epsilon() + 1e-12;
    std::deque<VertexId> frontier;
    if (!dels.empty()) {
        // Re-match against the old graph: same deterministic rule as
        // applyChurn, so exactly the removed occurrences are checked.
        const auto matched = matchDeletions(old_graph, dels);
        for (std::size_t i = 0; i < dels.size(); ++i) {
            const auto e = matched[i];
            if (e == kUnmatched)
                continue; // deleting a nonexistent edge: no-op
            const VertexId src = dels[i].src;
            const VertexId dst = old_graph.target(e);
            const Value f =
                alg.edgeCompute(old_graph, src, e, states[src]);
            const Value s = states[dst];
            const bool supports = kind == AccumKind::Min
                ? f <= s + tol
                : f >= s - tol;
            if (supports)
                frontier.push_back(dst);
        }
    }

    // Downstream closure of the supported endpoints in the updated
    // graph (influence only flows along edge direction).
    Bitmap affected(updated.numVertices());
    bool any_affected = false;
    while (!frontier.empty()) {
        const VertexId v = frontier.front();
        frontier.pop_front();
        if (v >= updated.numVertices() || !affected.testAndSet(v))
            continue;
        any_affected = true;
        for (const auto t : updated.neighbors(v))
            if (!affected.test(t))
                frontier.push_back(t);
    }

    // Resume states: old fixpoint, except the affected closure (and
    // any new vertices) restart from scratch.
    states.resize(updated.numVertices());
    alg.prepare(updated);
    for (VertexId v = 0; v < updated.numVertices(); ++v) {
        if (v >= old_n || affected.test(v)) {
            states[v] = alg.initState(updated, v);
            inj[v] = applyAccum(kind, inj[v],
                                alg.initDelta(updated, v));
        }
    }

    // Boundary influence: every surviving edge from an unaffected
    // vertex into the affected region re-seeds its endpoint from a
    // still-valid fixpoint value. (One pass over the edge array keeps
    // parallel duplicates trivially correct.)
    if (any_affected) {
        for (VertexId u = 0; u < updated.numVertices(); ++u) {
            if (u >= old_n || affected.test(u))
                continue;
            for (EdgeId e = updated.edgeBegin(u);
                 e < updated.edgeEnd(u); ++e) {
                const VertexId t = updated.target(e);
                if (!affected.test(t))
                    continue;
                inj[t] = applyAccum(
                    kind, inj[t],
                    alg.edgeCompute(updated, u, e, states[u]));
            }
        }
    }

    // Insertions: the new edges' influence from sources whose old
    // value is still a valid bound. Affected/new sources are skipped
    // -- their stale value could overshoot the monotone accumulator,
    // and their true influence propagates once they reconverge.
    for (const auto &e : ins) {
        if (e.src >= old_n || affected.test(e.src))
            continue;
        const Value s = states[e.src];
        // Locate the inserted edge in the updated CSR (first matching
        // edge with this weight; parallel duplicates are equivalent).
        for (EdgeId k = updated.edgeBegin(e.src);
             k < updated.edgeEnd(e.src); ++k) {
            if (updated.target(k) == e.dst
                && updated.weight(k) == e.weight) {
                inj[e.dst] = applyAccum(
                    kind, inj[e.dst],
                    alg.edgeCompute(updated, e.src, k, s));
                break;
            }
        }
    }
    return inj;
}

} // namespace depgraph::gas
