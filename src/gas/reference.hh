/**
 * @file
 * Synchronous reference executor.
 *
 * Runs the delta-accumulative GAS iteration round-by-round with a
 * two-buffer (Jacobi) schedule and no hardware model. Its converged
 * states are the gold results every engine (Ligra, Ligra-o, HATS,
 * Minnow, PHI, DepGraph-S/H) is validated against -- this is the
 * executable form of Theorem 1's "same results as the original ones
 * without dependency transformation".
 */

#ifndef DEPGRAPH_GAS_REFERENCE_HH
#define DEPGRAPH_GAS_REFERENCE_HH

#include <cstdint>
#include <vector>

#include "gas/model.hh"

namespace depgraph::gas
{

struct ReferenceResult
{
    std::vector<Value> states;
    unsigned rounds = 0;
    std::uint64_t updates = 0;  ///< vertex state applications
    std::uint64_t edgeOps = 0;  ///< EdgeCompute invocations
    bool converged = false;
};

/**
 * Run alg on g to convergence (or max_rounds).
 */
ReferenceResult runReference(const graph::Graph &g, Algorithm &alg,
                             unsigned max_rounds = 10000);

/**
 * Compare two state vectors under the algorithm's accumulator
 * semantics; returns the max absolute difference over vertices where
 * both are finite, treating matching infinities as equal.
 */
Value maxStateDifference(const std::vector<Value> &a,
                         const std::vector<Value> &b);

} // namespace depgraph::gas

#endif // DEPGRAPH_GAS_REFERENCE_HH
