#include "gas/algorithms.hh"

#include "common/logging.hh"

namespace depgraph::gas
{

AlgorithmPtr
makeAlgorithm(const std::string &name)
{
    if (name == "pagerank")
        return std::make_unique<PageRank>();
    if (name == "adsorption")
        return std::make_unique<Adsorption>();
    if (name == "katz")
        return std::make_unique<Katz>();
    if (name == "sssp")
        return std::make_unique<Sssp>();
    if (name == "wcc")
        return std::make_unique<Wcc>();
    if (name == "sswp")
        return std::make_unique<Sswp>();
    if (name == "bfs")
        return std::make_unique<Bfs>();
    dg_fatal("unknown algorithm '", name,
             "' (pagerank/adsorption/katz/sssp/wcc/sswp/bfs)");
}

std::vector<std::string>
paperAlgorithms()
{
    return {"pagerank", "adsorption", "sssp", "wcc"};
}

} // namespace depgraph::gas
