#include "gas/accum.hh"

#include "common/logging.hh"

namespace depgraph::gas
{

std::optional<AccumKind>
detectAccumKind(const Algorithm &alg)
{
    const Value probe = alg.accumOp(1.0, 1.0);
    if (probe == 2.0)
        return AccumKind::Sum;
    if (probe == 1.0) {
        // min or max: disambiguate with asymmetric operands.
        const Value lo = alg.accumOp(1.0, 2.0);
        const Value hi = alg.accumOp(2.0, 1.0);
        if (lo == 1.0 && hi == 1.0)
            return AccumKind::Min;
        if (lo == 2.0 && hi == 2.0)
            return AccumKind::Max;
        return std::nullopt; // order-dependent: not a generalized sum
    }
    return std::nullopt;
}

AccumKind
verifiedAccumKind(const Algorithm &alg)
{
    const auto detected = detectAccumKind(alg);
    if (!detected) {
        dg_fatal("algorithm '", alg.name(), "' has a generalized sum "
                 "that is neither sum nor min/max; disable the "
                 "dependency transformation for it");
    }
    if (*detected != alg.accumKind()) {
        dg_fatal("algorithm '", alg.name(), "' declares accum kind '",
                 accumKindName(alg.accumKind()), "' but probes as '",
                 accumKindName(*detected), "'");
    }
    return *detected;
}

} // namespace depgraph::gas
