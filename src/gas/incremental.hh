/**
 * @file
 * Incremental recomputation after graph updates.
 *
 * "Incremental pagerank" [56], [64] -- the paper's flagship workload --
 * reconverges an already-solved instance after the graph changes,
 * propagating only the deltas the change injects. For linear GAS
 * algorithms this is exact: a vertex u with converged state s_u has
 * historically sent f_e(total delta through u) along each out-edge e,
 * and since the edge functions are linear in the propagated mass, an
 * edge change simply injects the difference into the affected
 * neighbors' pending deltas.
 *
 * Two pieces make any engine incremental without modification:
 *  - edgeInsertionDeltas(): the exact delta injection for a batch of
 *    edge insertions under a sum-accumulator algorithm (min/max
 *    algorithms reseed even more simply: the new edge's influence);
 *  - ResumeAlgorithm: wraps any Algorithm, overriding initState() /
 *    initDelta() with explicit vectors, so every engine starts from
 *    the old fixpoint plus the injected deltas.
 */

#ifndef DEPGRAPH_GAS_INCREMENTAL_HH
#define DEPGRAPH_GAS_INCREMENTAL_HH

#include <vector>

#include "gas/model.hh"
#include "graph/builder.hh"

namespace depgraph::gas
{

/** One edge insertion. */
struct EdgeInsertion
{
    VertexId src;
    VertexId dst;
    Value weight = 1.0;
};

/**
 * Build the updated graph: the old graph's edges plus the insertions.
 */
graph::Graph applyInsertions(const graph::Graph &g,
                             const std::vector<EdgeInsertion> &ins);

/**
 * Compute the pending-delta injection that reconverges `alg` on
 * `updated` starting from `old_states` (the fixpoint on the old
 * graph).
 *
 * Sum accumulators: for every source u of an inserted edge, the mass u
 * has historically pushed along each old out-edge was computed with
 * the OLD edge function (e.g. pagerank's damping/old_outdeg); the
 * injection adds f_new(m_u) - f_old(m_u) to every old neighbor and
 * f_new(m_u) to the new neighbors, where m_u is the total delta ever
 * applied at u. For the algorithms here (initial state 0, pure
 * accumulation) m_u equals the converged state.
 *
 * Min/max accumulators: converged states remain valid lower/upper
 * bounds; the injection is simply the new edges' influence
 * f_e(s_src), which then propagates monotonically.
 *
 * @return Per-vertex pending deltas (accumulator identity elsewhere).
 */
std::vector<Value> edgeInsertionDeltas(
    const graph::Graph &old_graph, const graph::Graph &updated,
    const std::vector<EdgeInsertion> &ins,
    const std::vector<Value> &old_states, Algorithm &alg);

/**
 * Wrap an algorithm with explicit initial states and pending deltas,
 * turning any engine run into a resume-from-fixpoint run.
 */
class ResumeAlgorithm : public Algorithm
{
  public:
    ResumeAlgorithm(Algorithm &inner, std::vector<Value> states,
                    std::vector<Value> deltas)
        : inner_(inner), states_(std::move(states)),
          deltas_(std::move(deltas))
    {}

    std::string name() const override
    {
        return inner_.name() + "+resume";
    }

    AccumKind accumKind() const override { return inner_.accumKind(); }

    Value
    accumOp(Value a, Value b) const override
    {
        return inner_.accumOp(a, b);
    }

    LinearFunc
    edgeFunc(const graph::Graph &g, VertexId src,
             EdgeId e) const override
    {
        return inner_.edgeFunc(g, src, e);
    }

    Value
    edgeCompute(const graph::Graph &g, VertexId src, EdgeId e,
                Value delta) const override
    {
        return inner_.edgeCompute(g, src, e, delta);
    }

    void prepare(const graph::Graph &g) override { inner_.prepare(g); }

    Value
    initState(const graph::Graph &, VertexId v) const override
    {
        return states_[v];
    }

    Value
    initDelta(const graph::Graph &, VertexId v) const override
    {
        return deltas_[v];
    }

    Value epsilon() const override { return inner_.epsilon(); }

    bool transformable() const override
    {
        return inner_.transformable();
    }

  private:
    Algorithm &inner_;
    std::vector<Value> states_;
    std::vector<Value> deltas_;
};

} // namespace depgraph::gas

#endif // DEPGRAPH_GAS_INCREMENTAL_HH
