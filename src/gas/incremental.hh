/**
 * @file
 * Incremental recomputation after graph updates.
 *
 * "Incremental pagerank" [56], [64] -- the paper's flagship workload --
 * reconverges an already-solved instance after the graph changes,
 * propagating only the deltas the change injects. For linear GAS
 * algorithms this is exact: a vertex u with converged state s_u has
 * historically sent f_e(total delta through u) along each out-edge e,
 * and since the edge functions are linear in the propagated mass, an
 * edge change simply injects the difference into the affected
 * neighbors' pending deltas.
 *
 * Both halves of a real update stream are supported:
 *
 *  - Insertions (edgeInsertionDeltas): sum accumulators retract the
 *    mass sent under the old edge functions and re-send it under the
 *    new ones; min/max accumulators keep the old fixpoint as a valid
 *    bound and only inject the new edges' influence.
 *  - Deletions (edgeDeletionDeltas): sum accumulators retract exactly
 *    the mass the deleted edge historically delivered -- the same
 *    retract/re-send computation, which also covers the out-degree
 *    renormalization at surviving neighbors. Min/max accumulators are
 *    harder: the old fixpoint is NO LONGER a valid bound for any
 *    vertex whose value was supported by a deleted edge, so those
 *    vertices (and their downstream closure) are re-seeded to their
 *    initial state/delta and re-converged from the influence crossing
 *    the closure boundary.
 *  - Mixed batches (edgeChurnDeltas): one old->updated graph pair,
 *    one combined injection; this is what the service's UpdateBatcher
 *    applies per flush.
 *
 * ResumeAlgorithm wraps any Algorithm, overriding initState() /
 * initDelta() with explicit vectors, so every engine starts from the
 * old fixpoint plus the injected deltas.
 */

#ifndef DEPGRAPH_GAS_INCREMENTAL_HH
#define DEPGRAPH_GAS_INCREMENTAL_HH

#include <vector>

#include "gas/model.hh"
#include "graph/builder.hh"

namespace depgraph::gas
{

/** One edge insertion. */
struct EdgeInsertion
{
    VertexId src;
    VertexId dst;
    Value weight = 1.0;
};

/**
 * One edge deletion. A negative weight (the default) matches any
 * (src, dst) edge; a non-negative weight only matches an edge with
 * exactly that weight. Each deletion removes at most ONE occurrence,
 * so parallel duplicates are deleted one request at a time; a deletion
 * that matches nothing is ignored.
 */
struct EdgeDeletion
{
    VertexId src;
    VertexId dst;
    Value weight = kAnyWeight;

    static constexpr Value kAnyWeight = -1.0;

    bool matchesAnyWeight() const { return weight < 0.0; }
};

/**
 * Build the updated graph: the old graph's edges plus the insertions.
 */
graph::Graph applyInsertions(const graph::Graph &g,
                             const std::vector<EdgeInsertion> &ins);

/**
 * Build the updated graph: the old graph's edges minus the deletions.
 * Deletions are matched against g in request order, each claiming the
 * first not-yet-claimed matching occurrence; unmatched deletions are
 * ignored. The vertex set is unchanged.
 */
graph::Graph applyDeletions(const graph::Graph &g,
                            const std::vector<EdgeDeletion> &dels);

/**
 * Build the updated graph for a mixed batch. Deletions are matched
 * against the OLD graph's edges only (they can never claim an edge
 * from `ins`), then the insertions are appended -- so a delete + an
 * insert of the same (src, dst) in one batch replaces the edge rather
 * than annihilating the insertion.
 */
graph::Graph applyChurn(const graph::Graph &g,
                        const std::vector<EdgeInsertion> &ins,
                        const std::vector<EdgeDeletion> &dels);

/**
 * Compute the pending-delta injection that reconverges `alg` on
 * `updated` starting from `old_states` (the fixpoint on the old
 * graph).
 *
 * Sum accumulators: for every source u of an inserted edge, the mass u
 * has historically pushed along each old out-edge was computed with
 * the OLD edge function (e.g. pagerank's damping/old_outdeg); the
 * injection adds f_new(m_u) - f_old(m_u) to every old neighbor and
 * f_new(m_u) to the new neighbors, where m_u is the total delta ever
 * applied at u. For the algorithms here (initial state 0, pure
 * accumulation) m_u equals the converged state.
 *
 * Min/max accumulators: converged states remain valid lower/upper
 * bounds; the injection is simply the new edges' influence
 * f_e(s_src), which then propagates monotonically.
 *
 * @return Per-vertex pending deltas (accumulator identity elsewhere).
 */
std::vector<Value> edgeInsertionDeltas(
    const graph::Graph &old_graph, const graph::Graph &updated,
    const std::vector<EdgeInsertion> &ins,
    const std::vector<Value> &old_states, Algorithm &alg);

/**
 * Combined injection for a mixed insert/delete batch; `updated` must
 * be applyChurn(old_graph, ins, dels).
 *
 * `states` holds the old fixpoint on entry and the resume states on
 * return: it is resized to the updated vertex count, and -- for
 * min/max accumulators -- every vertex whose value may have depended
 * on a deleted edge is reset to its initial state (the old value is no
 * longer a valid bound once a supporting edge is gone). Sum
 * accumulators never need the reset: the retraction is exact because
 * the edge functions are linear and homogeneous (DESIGN.md), so the
 * deleted edge's historical mass is simply taken back at the old dst
 * and the renormalized difference re-sent to surviving neighbors.
 *
 * @return Per-vertex pending deltas to pair with `states` in a
 *         ResumeAlgorithm run.
 */
std::vector<Value> edgeChurnDeltas(const graph::Graph &old_graph,
                                   const graph::Graph &updated,
                                   const std::vector<EdgeInsertion> &ins,
                                   const std::vector<EdgeDeletion> &dels,
                                   std::vector<Value> &states,
                                   Algorithm &alg);

/**
 * Deletion-only convenience: edgeChurnDeltas with no insertions;
 * `updated` must be applyDeletions(old_graph, dels).
 */
std::vector<Value> edgeDeletionDeltas(const graph::Graph &old_graph,
                                      const graph::Graph &updated,
                                      const std::vector<EdgeDeletion> &dels,
                                      std::vector<Value> &states,
                                      Algorithm &alg);

/**
 * Wrap an algorithm with explicit initial states and pending deltas,
 * turning any engine run into a resume-from-fixpoint run.
 */
class ResumeAlgorithm : public Algorithm
{
  public:
    ResumeAlgorithm(Algorithm &inner, std::vector<Value> states,
                    std::vector<Value> deltas)
        : inner_(inner), states_(std::move(states)),
          deltas_(std::move(deltas))
    {}

    std::string name() const override
    {
        return inner_.name() + "+resume";
    }

    AccumKind accumKind() const override { return inner_.accumKind(); }

    Value
    accumOp(Value a, Value b) const override
    {
        return inner_.accumOp(a, b);
    }

    LinearFunc
    edgeFunc(const graph::Graph &g, VertexId src,
             EdgeId e) const override
    {
        return inner_.edgeFunc(g, src, e);
    }

    Value
    edgeCompute(const graph::Graph &g, VertexId src, EdgeId e,
                Value delta) const override
    {
        return inner_.edgeCompute(g, src, e, delta);
    }

    void
    edgeFuncBlock(const graph::Graph &g, VertexId src, EdgeId eBegin,
                  std::uint32_t n, Value *mu, Value *xi,
                  Value *cap) const override
    {
        inner_.edgeFuncBlock(g, src, eBegin, n, mu, xi, cap);
    }

    bool
    affineEdgeCompute() const override
    {
        return inner_.affineEdgeCompute();
    }

    void prepare(const graph::Graph &g) override { inner_.prepare(g); }

    Value
    initState(const graph::Graph &, VertexId v) const override
    {
        return states_[v];
    }

    Value
    initDelta(const graph::Graph &, VertexId v) const override
    {
        return deltas_[v];
    }

    Value epsilon() const override { return inner_.epsilon(); }

    bool transformable() const override
    {
        return inner_.transformable();
    }

  private:
    Algorithm &inner_;
    std::vector<Value> states_;
    std::vector<Value> deltas_;
};

} // namespace depgraph::gas

#endif // DEPGRAPH_GAS_INCREMENTAL_HH
