/**
 * @file
 * The iterative graph algorithms evaluated in the paper (Fig. 1 and
 * Table I): incremental pagerank, adsorption, SSSP, WCC, plus the
 * Table I extras Katz metric and single-source widest path (SSWP).
 *
 * All are expressed in the delta-based linear GAS form of gas/model.hh.
 */

#ifndef DEPGRAPH_GAS_ALGORITHMS_HH
#define DEPGRAPH_GAS_ALGORITHMS_HH

#include <string>
#include <vector>

#include "common/logging.hh"
#include "gas/model.hh"

namespace depgraph::gas
{

/**
 * Incremental pagerank (delta-accumulative form, paper Fig. 1a):
 * EdgeCompute scatters damping * delta / outdeg(src); Accum is sum.
 *
 * "Incremental" means the run starts from a converged ranking into
 * which a graph change injected fresh rank mass at a sparse set of
 * vertices (every seed_stride-th vertex here, deterministically) --
 * the workload of [56], [64] that the paper evaluates. Propagation is
 * therefore chain-bound rather than uniformly decay-bound, which is
 * the regime where dependency chains dominate (paper Sec. II).
 * Pass seed_stride = 1 for a from-scratch full pagerank.
 */
class PageRank : public Algorithm
{
  public:
    explicit PageRank(Value damping = 0.85, Value eps = 1e-5,
                      VertexId seed_stride = 16)
        : damping_(damping), eps_(eps), seedStride_(seed_stride)
    {}

    std::string name() const override { return "pagerank"; }
    AccumKind accumKind() const override { return AccumKind::Sum; }
    Value accumOp(Value a, Value b) const override { return a + b; }

    LinearFunc
    edgeFunc(const graph::Graph &g, VertexId src,
             EdgeId) const override
    {
        const auto deg = g.outDegree(src);
        return {damping_ / static_cast<Value>(deg ? deg : 1), 0.0,
                kInfinity};
    }

    /* One division for the whole block: every out-edge of src shares
     * the same damping/deg factor. */
    void
    edgeFuncBlock(const graph::Graph &g, VertexId src, EdgeId,
                  std::uint32_t n, Value *mu, Value *xi,
                  Value *cap) const override
    {
        const auto deg = g.outDegree(src);
        const Value m = damping_ / static_cast<Value>(deg ? deg : 1);
        for (std::uint32_t i = 0; i < n; ++i) {
            mu[i] = m;
            xi[i] = 0.0;
            cap[i] = kInfinity;
        }
    }

    Value
    initState(const graph::Graph &, VertexId) const override
    {
        return 0.0;
    }

    Value
    initDelta(const graph::Graph &, VertexId v) const override
    {
        return (v % seedStride_ == 0) ? 1.0 - damping_ : 0.0;
    }

    Value epsilon() const override { return eps_; }
    Value damping() const { return damping_; }

  private:
    Value damping_;
    Value eps_;
    VertexId seedStride_;
};

/**
 * Adsorption label propagation (paper Fig. 1b): each vertex has a
 * continuation probability; EdgeCompute scatters
 * delta * p_cont(src) * weight / total_out_weight(src). A deterministic
 * per-vertex probability keeps runs reproducible. Seed vertices inject
 * unit label mass.
 */
class Adsorption : public Algorithm
{
  public:
    /** @param seed_stride Every seed_stride-th vertex is a label seed. */
    explicit Adsorption(VertexId seed_stride = 64, Value eps = 1e-5)
        : seedStride_(seed_stride), eps_(eps)
    {}

    std::string name() const override { return "adsorption"; }
    AccumKind accumKind() const override { return AccumKind::Sum; }
    Value accumOp(Value a, Value b) const override { return a + b; }

    /** Deterministic continuation probability in [0.30, 0.80). */
    static Value
    continueProb(VertexId v)
    {
        const std::uint32_t h = (v + 1u) * 2654435761u;
        return 0.30 + 0.50 * static_cast<Value>((h >> 8) & 0xffff)
            / 65536.0;
    }

    void
    prepare(const graph::Graph &g) override
    {
        if (preparedFor_ == &g)
            return;
        outWeightSum_.assign(g.numVertices(), 1.0);
        for (VertexId v = 0; v < g.numVertices(); ++v) {
            Value wsum = 0.0;
            for (EdgeId k = g.edgeBegin(v); k < g.edgeEnd(v); ++k)
                wsum += g.weight(k);
            if (wsum > 0.0)
                outWeightSum_[v] = wsum;
        }
        preparedFor_ = &g;
    }

    LinearFunc
    edgeFunc(const graph::Graph &g, VertexId src,
             EdgeId e) const override
    {
        // Normalize by the total outgoing weight so the scatter is a
        // contraction and the iteration converges.
        dg_assert(preparedFor_ == &g,
                  "Adsorption::prepare() not called for this graph");
        return {continueProb(src) * g.weight(e) / outWeightSum_[src],
                0.0, kInfinity};
    }

    void
    edgeFuncBlock(const graph::Graph &g, VertexId src, EdgeId eBegin,
                  std::uint32_t n, Value *mu, Value *xi,
                  Value *cap) const override
    {
        dg_assert(preparedFor_ == &g,
                  "Adsorption::prepare() not called for this graph");
        /* Same expression shape as edgeFunc(): p * w / wsum with the
         * identical association, so the lane values match bitwise. */
        const Value p = continueProb(src);
        const Value wsum = outWeightSum_[src];
        for (std::uint32_t i = 0; i < n; ++i) {
            mu[i] = p * g.weight(eBegin + i) / wsum;
            xi[i] = 0.0;
            cap[i] = kInfinity;
        }
    }

    Value
    initState(const graph::Graph &, VertexId) const override
    {
        return 0.0;
    }

    Value
    initDelta(const graph::Graph &, VertexId v) const override
    {
        return (v % seedStride_ == 0) ? 1.0 : 0.0;
    }

    Value epsilon() const override { return eps_; }

  private:
    VertexId seedStride_;
    Value eps_;
    const graph::Graph *preparedFor_ = nullptr;
    std::vector<Value> outWeightSum_;
};

/**
 * Katz centrality (Table I): EdgeCompute scatters beta * delta; Accum
 * is sum. beta must be below 1/lambda_max for convergence; the default
 * is conservative for the sparse graphs used in tests.
 */
class Katz : public Algorithm
{
  public:
    explicit Katz(Value beta = 0.003, Value eps = 1e-5)
        : beta_(beta), eps_(eps)
    {}

    std::string name() const override { return "katz"; }
    AccumKind accumKind() const override { return AccumKind::Sum; }
    Value accumOp(Value a, Value b) const override { return a + b; }

    LinearFunc
    edgeFunc(const graph::Graph &, VertexId, EdgeId) const override
    {
        return {beta_, 0.0, kInfinity};
    }

    void
    edgeFuncBlock(const graph::Graph &, VertexId, EdgeId,
                  std::uint32_t n, Value *mu, Value *xi,
                  Value *cap) const override
    {
        for (std::uint32_t i = 0; i < n; ++i) {
            mu[i] = beta_;
            xi[i] = 0.0;
            cap[i] = kInfinity;
        }
    }

    Value
    initState(const graph::Graph &, VertexId) const override
    {
        return 0.0;
    }

    Value
    initDelta(const graph::Graph &, VertexId) const override
    {
        return 1.0;
    }

    Value epsilon() const override { return eps_; }

  private:
    Value beta_;
    Value eps_;
};

/**
 * Single-source shortest path (paper Fig. 1c): EdgeCompute is
 * delta + weight; Accum is min.
 */
class Sssp : public Algorithm
{
  public:
    explicit Sssp(VertexId source = 0)
        : source_(source)
    {}

    std::string name() const override { return "sssp"; }
    AccumKind accumKind() const override { return AccumKind::Min; }

    Value
    accumOp(Value a, Value b) const override
    {
        return a < b ? a : b;
    }

    LinearFunc
    edgeFunc(const graph::Graph &g, VertexId, EdgeId e) const override
    {
        return {1.0, g.weight(e), kInfinity};
    }

    /* xi lane streams the edge weights directly. */
    void
    edgeFuncBlock(const graph::Graph &g, VertexId, EdgeId eBegin,
                  std::uint32_t n, Value *mu, Value *xi,
                  Value *cap) const override
    {
        for (std::uint32_t i = 0; i < n; ++i) {
            mu[i] = 1.0;
            xi[i] = g.weight(eBegin + i);
            cap[i] = kInfinity;
        }
    }

    Value
    initState(const graph::Graph &, VertexId) const override
    {
        return kInfinity;
    }

    Value
    initDelta(const graph::Graph &, VertexId v) const override
    {
        return v == source_ ? 0.0 : kInfinity;
    }

    Value epsilon() const override { return 0.0; }
    VertexId source() const { return source_; }

  private:
    VertexId source_;
};

/**
 * Weakly connected components via max-label propagation (paper
 * Fig. 1d): EdgeCompute forwards the label; Accum is max. On directed
 * inputs this computes forward-reachability labels; engines that want
 * true WCC run it on the symmetrized graph.
 */
class Wcc : public Algorithm
{
  public:
    std::string name() const override { return "wcc"; }
    AccumKind accumKind() const override { return AccumKind::Max; }

    Value
    accumOp(Value a, Value b) const override
    {
        return a > b ? a : b;
    }

    LinearFunc
    edgeFunc(const graph::Graph &, VertexId, EdgeId) const override
    {
        return {1.0, 0.0, kInfinity};
    }

    void
    edgeFuncBlock(const graph::Graph &, VertexId, EdgeId,
                  std::uint32_t n, Value *mu, Value *xi,
                  Value *cap) const override
    {
        for (std::uint32_t i = 0; i < n; ++i) {
            mu[i] = 1.0;
            xi[i] = 0.0;
            cap[i] = kInfinity;
        }
    }

    Value
    initState(const graph::Graph &, VertexId) const override
    {
        return -kInfinity;
    }

    Value
    initDelta(const graph::Graph &, VertexId v) const override
    {
        return static_cast<Value>(v);
    }

    Value epsilon() const override { return 0.0; }
};

/**
 * Single-source widest path (Table I): the bottleneck capacity of the
 * best path. EdgeCompute is min(delta, weight) -- a capped linear
 * function -- and Accum is max.
 */
class Sswp : public Algorithm
{
  public:
    explicit Sswp(VertexId source = 0)
        : source_(source)
    {}

    std::string name() const override { return "sswp"; }
    AccumKind accumKind() const override { return AccumKind::Max; }

    Value
    accumOp(Value a, Value b) const override
    {
        return a > b ? a : b;
    }

    LinearFunc
    edgeFunc(const graph::Graph &g, VertexId, EdgeId e) const override
    {
        return {1.0, 0.0, g.weight(e)};
    }

    /* cap lane streams the edge weights (capped-linear EdgeCompute). */
    void
    edgeFuncBlock(const graph::Graph &g, VertexId, EdgeId eBegin,
                  std::uint32_t n, Value *mu, Value *xi,
                  Value *cap) const override
    {
        for (std::uint32_t i = 0; i < n; ++i) {
            mu[i] = 1.0;
            xi[i] = 0.0;
            cap[i] = g.weight(eBegin + i);
        }
    }

    Value
    initState(const graph::Graph &, VertexId) const override
    {
        return -kInfinity;
    }

    Value
    initDelta(const graph::Graph &, VertexId v) const override
    {
        return v == source_ ? kInfinity : -kInfinity;
    }

    Value epsilon() const override { return 0.0; }

  private:
    VertexId source_;
};

/**
 * Breadth-first hop count: SSSP over unit edge weights (every edge
 * costs one hop regardless of stored weights). Accum is min.
 */
class Bfs : public Algorithm
{
  public:
    explicit Bfs(VertexId source = 0)
        : source_(source)
    {}

    std::string name() const override { return "bfs"; }
    AccumKind accumKind() const override { return AccumKind::Min; }

    Value
    accumOp(Value a, Value b) const override
    {
        return a < b ? a : b;
    }

    LinearFunc
    edgeFunc(const graph::Graph &, VertexId, EdgeId) const override
    {
        return {1.0, 1.0, kInfinity};
    }

    Value
    initState(const graph::Graph &, VertexId) const override
    {
        return kInfinity;
    }

    Value
    initDelta(const graph::Graph &, VertexId v) const override
    {
        return v == source_ ? 0.0 : kInfinity;
    }

    Value epsilon() const override { return 0.0; }

  private:
    VertexId source_;
};

/**
 * Build an algorithm by name: pagerank | adsorption | katz | sssp |
 * wcc | sswp | bfs. Fatal on unknown names.
 */
AlgorithmPtr makeAlgorithm(const std::string &name);

/** The four algorithms the paper's evaluation sweeps (Sec. IV). */
std::vector<std::string> paperAlgorithms();

} // namespace depgraph::gas

#endif // DEPGRAPH_GAS_ALGORITHMS_HH
