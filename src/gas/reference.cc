#include "gas/reference.hh"

#include <cmath>

#include "common/logging.hh"

namespace depgraph::gas
{

ReferenceResult
runReference(const graph::Graph &g, Algorithm &alg, unsigned max_rounds)
{
    alg.prepare(g);
    const VertexId n = g.numVertices();
    const Value ident = alg.identity();
    const AccumKind kind = alg.accumKind();
    const Value eps = alg.epsilon();

    ReferenceResult r;
    r.states.resize(n);
    std::vector<Value> delta(n), next(n, ident);
    for (VertexId v = 0; v < n; ++v) {
        r.states[v] = alg.initState(g, v);
        delta[v] = alg.initDelta(g, v);
    }

    for (unsigned round = 0; round < max_rounds; ++round) {
        bool any = false;
        for (VertexId v = 0; v < n; ++v) {
            const Value d = delta[v];
            if (d == ident)
                continue;
            if (!wouldChange(kind, r.states[v], d, eps)) {
                // Sub-threshold delta: carry it forward so mass is not
                // silently dropped (it may still grow past epsilon).
                next[v] = applyAccum(kind, next[v], d);
                continue;
            }
            any = true;
            r.states[v] = applyAccum(kind, r.states[v], d);
            ++r.updates;
            for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e) {
                const Value inf = alg.edgeCompute(g, v, e, d);
                const VertexId t = g.target(e);
                next[t] = applyAccum(kind, next[t], inf);
                ++r.edgeOps;
            }
        }
        delta.swap(next);
        for (VertexId v = 0; v < n; ++v)
            next[v] = ident;
        ++r.rounds;
        if (!any) {
            r.converged = true;
            break;
        }
    }
    if (!r.converged)
        dg_warn("reference run of '", alg.name(), "' hit the round "
                "limit (", max_rounds, ") before converging");
    return r;
}

Value
maxStateDifference(const std::vector<Value> &a,
                   const std::vector<Value> &b)
{
    dg_assert(a.size() == b.size(), "state vectors differ in size");
    Value worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const bool fa = std::isfinite(a[i]), fb = std::isfinite(b[i]);
        if (!fa && !fb) {
            if (a[i] != b[i])
                return kInfinity; // +inf vs -inf
            continue;
        }
        if (fa != fb)
            return kInfinity;
        worst = std::max(worst, std::abs(a[i] - b[i]));
    }
    return worst;
}

} // namespace depgraph::gas
