#include "gas/model.hh"

namespace depgraph::gas
{

const char *
accumKindName(AccumKind k)
{
    switch (k) {
      case AccumKind::Sum:
        return "sum";
      case AccumKind::Min:
        return "min";
      case AccumKind::Max:
        return "max";
    }
    return "?";
}

Value
accumIdentity(AccumKind k)
{
    switch (k) {
      case AccumKind::Sum:
        return 0.0;
      case AccumKind::Min:
        return kInfinity;
      case AccumKind::Max:
        return -kInfinity;
    }
    return 0.0;
}

bool
wouldChange(AccumKind k, Value state, Value delta, Value eps)
{
    switch (k) {
      case AccumKind::Sum:
        return std::abs(delta) > eps;
      case AccumKind::Min:
        return delta < state - eps;
      case AccumKind::Max:
        if (state == -kInfinity)
            return delta != -kInfinity;
        return delta > state + eps;
    }
    return false;
}

} // namespace depgraph::gas
