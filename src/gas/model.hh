/**
 * @file
 * The linear GAS (Gather-Apply-Scatter) programming model.
 *
 * Algorithms are expressed exactly as in the paper's Fig. 1: a
 * generalized sum Accum() (sum, min, or max) and an edge function
 * EdgeCompute() that is linear in the propagated state. Execution uses
 * the delta-based accumulative formulation (Maiter/DAIC): every vertex
 * carries a state and a pending delta; processing a vertex folds the
 * delta into the state and scatters EdgeCompute(delta) to each
 * out-neighbor's delta. The two properties of Sec. III-A3 (GAS form +
 * linear EdgeCompute) are what make the dependency transformation
 * correct (Theorem 1).
 */

#ifndef DEPGRAPH_GAS_MODEL_HH
#define DEPGRAPH_GAS_MODEL_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"
#include "graph/csr.hh"

namespace depgraph::gas
{

/** The generalized sum of the algorithm (paper Table I). */
enum class AccumKind
{
    Sum,
    Min,
    Max,
};

/** Human-readable name for reports. */
const char *accumKindName(AccumKind k);

/**
 * A capped linear function f(s) = min(cap, mu*s + xi).
 *
 * Pure linear functions (cap = +inf) cover pagerank/adsorption/katz/
 * SSSP/WCC. The cap extension makes SSWP's EdgeCompute
 * (min(s, weight)) exactly representable; the family is closed under
 * composition whenever mu >= 0, which holds for every supported
 * algorithm, so composite dependencies along core-paths stay in the
 * family (the property the hub index relies on).
 */
struct LinearFunc
{
    Value mu = 1.0;
    Value xi = 0.0;
    Value cap = kInfinity;

    Value
    operator()(Value s) const
    {
        return std::min(cap, mu * s + xi);
    }

    /** Composition outer(inner(s)); requires outer.mu >= 0. */
    static LinearFunc
    compose(const LinearFunc &outer, const LinearFunc &inner)
    {
        LinearFunc f;
        f.mu = outer.mu * inner.mu;
        f.xi = outer.mu * inner.xi + outer.xi;
        f.cap = outer.cap;
        if (inner.cap != kInfinity) {
            f.cap = std::min(f.cap, outer.mu * inner.cap + outer.xi);
        }
        return f;
    }

    bool
    isPureLinear() const
    {
        return cap == kInfinity;
    }
};

/** Identity element of the generalized sum. */
Value accumIdentity(AccumKind k);

/** Apply the generalized sum. */
inline Value
applyAccum(AccumKind k, Value a, Value b)
{
    switch (k) {
      case AccumKind::Sum:
        return a + b;
      case AccumKind::Min:
        return a < b ? a : b;
      case AccumKind::Max:
        return a > b ? a : b;
    }
    return a;
}

/**
 * Would folding `delta` into `state` move the state by more than eps?
 * This is the paper's activity criterion ("its state change ... is
 * larger than epsilon").
 */
bool wouldChange(AccumKind k, Value state, Value delta, Value eps);

/**
 * One iterative graph algorithm in the linear GAS form.
 *
 * Subclasses define the edge function, the initial state/delta per
 * vertex, and the convergence threshold. The Accum() callback is
 * provided as the virtual accumOp() so that DepGraph's automatic
 * Accum-kind probe (Sec. III-B2, "inputting x=1 and y=1") has a real
 * black-box function to interrogate.
 */
class Algorithm
{
  public:
    virtual ~Algorithm() = default;

    virtual std::string name() const = 0;

    /**
     * The user-supplied generalized sum, treated as a black box by the
     * accelerator (see detectAccumKind()).
     */
    virtual Value accumOp(Value a, Value b) const = 0;

    /** The declared accumulator kind (engines may instead probe). */
    virtual AccumKind accumKind() const = 0;

    /**
     * The linear form of EdgeCompute for edge e out of src:
     * influence(delta) = min(cap, mu*delta + xi).
     */
    virtual LinearFunc edgeFunc(const graph::Graph &g, VertexId src,
                                EdgeId e) const = 0;

    /** EdgeCompute itself; default applies edgeFunc(). */
    virtual Value
    edgeCompute(const graph::Graph &g, VertexId src, EdgeId e,
                Value delta) const
    {
        return edgeFunc(g, src, e)(delta);
    }

    /**
     * Gather the linear edge functions of the contiguous out-edge
     * block [eBegin, eBegin + n) of src into struct-of-arrays lanes
     * (the chain-walk lane tiles feed these to the vectorized fold
     * kernels). The default loops over edgeFunc(); algorithms override
     * it to stream constants/weights directly. Every override must
     * stay bitwise-identical to the per-edge edgeFunc() values.
     */
    virtual void
    edgeFuncBlock(const graph::Graph &g, VertexId src, EdgeId eBegin,
                  std::uint32_t n, Value *mu, Value *xi,
                  Value *cap) const
    {
        for (std::uint32_t i = 0; i < n; ++i) {
            const LinearFunc f = edgeFunc(g, src, eBegin + i);
            mu[i] = f.mu;
            xi[i] = f.xi;
            cap[i] = f.cap;
        }
    }

    /**
     * Whether edgeCompute() is exactly edgeFunc() applied to delta --
     * i.e. min(cap, mu*delta + xi) with no extra rounding steps. Only
     * then may an engine batch EdgeCompute through edgeFuncBlock() +
     * the vectorized lane kernels; a false return keeps chain walks on
     * the per-edge scalar path. All built-in algorithms are affine
     * (none overrides edgeCompute()).
     */
    virtual bool
    affineEdgeCompute() const
    {
        return true;
    }

    /**
     * One-time per-graph preparation hook; engines must call it before
     * the first edgeFunc()/edgeCompute() on a graph. Algorithms use it
     * to precompute per-vertex constants (e.g. adsorption's outgoing
     * weight sums). Idempotent per graph.
     */
    virtual void prepare(const graph::Graph &) {}

    /** Initial state of v. */
    virtual Value initState(const graph::Graph &g, VertexId v) const = 0;

    /** Initial pending delta of v (accum identity when inactive). */
    virtual Value initDelta(const graph::Graph &g, VertexId v) const = 0;

    /** Convergence threshold (paper uses 1e-5 for pagerank). */
    virtual Value epsilon() const { return 1e-5; }

    /**
     * Whether the dependency transformation may be applied (Property 2
     * of Sec. III-A3). Algorithms such as triangle counting would
     * return false and run with the hub index disabled.
     */
    virtual bool transformable() const { return true; }

    /* Non-virtual conveniences. */
    Value identity() const { return accumIdentity(accumKind()); }

    Value
    accum(Value a, Value b) const
    {
        return applyAccum(accumKind(), a, b);
    }

    bool
    isActiveDelta(Value state, Value delta) const
    {
        return wouldChange(accumKind(), state, delta, epsilon());
    }
};

using AlgorithmPtr = std::unique_ptr<Algorithm>;

} // namespace depgraph::gas

#endif // DEPGRAPH_GAS_MODEL_HH
