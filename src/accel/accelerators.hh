/**
 * @file
 * Behavioural models of the three competing per-core accelerators the
 * paper compares against (Sec. IV-B):
 *
 *  - HATS (Mukkara et al., MICRO'18): a hardware-accelerated traversal
 *    scheduler that emits the active set in bounded-DFS order for
 *    locality; scheduling has no core-side instruction cost.
 *  - Minnow (Zhang et al., ASPLOS'18): hardware worklist management
 *    (cheap priority enqueue/dequeue) plus worklist-directed
 *    prefetching of the next work items' data.
 *  - PHI (Mukkara et al., MICRO'19): commutative scatter updates are
 *    coalesced and performed inside the cache hierarchy, removing the
 *    core's stall on remote update lines.
 *
 * Each model reproduces the mechanism its paper credits for speedup on
 * top of the same Ligra-o software runtime, which is exactly how the
 * DepGraph paper sets up Fig. 11/12.
 */

#ifndef DEPGRAPH_ACCEL_ACCELERATORS_HH
#define DEPGRAPH_ACCEL_ACCELERATORS_HH

#include "runtime/engine.hh"

namespace depgraph::accel
{

runtime::EnginePtr makeHats(runtime::EngineOptions opt = {});
runtime::EnginePtr makeMinnow(runtime::EngineOptions opt = {});
runtime::EnginePtr makePhi(runtime::EngineOptions opt = {});

} // namespace depgraph::accel

#endif // DEPGRAPH_ACCEL_ACCELERATORS_HH
