#include "accel/accelerators.hh"

#include "runtime/soft_engine.hh"

namespace depgraph::accel
{

using runtime::EngineOptions;
using runtime::EnginePtr;
using runtime::Schedule;
using runtime::SoftConfig;
using runtime::SoftEngine;

EnginePtr
makeHats(EngineOptions opt)
{
    return std::make_unique<SoftEngine>(
        SoftConfig{
            .name = "HATS",
            .schedule = Schedule::PathSweep, // hardware BDFS order
            .async = true,
            .hwScheduler = true,
            .hwWorklist = false,
            .prefetchVertexData = false,
            .cheapScatter = false,
        },
        opt);
}

EnginePtr
makeMinnow(EngineOptions opt)
{
    return std::make_unique<SoftEngine>(
        SoftConfig{
            .name = "Minnow",
            .schedule = Schedule::PriorityDelta, // priority worklist
            .async = true,
            .hwScheduler = false,
            .hwWorklist = true,
            .prefetchVertexData = true,
            .cheapScatter = false,
        },
        opt);
}

EnginePtr
makePhi(EngineOptions opt)
{
    return std::make_unique<SoftEngine>(
        SoftConfig{
            .name = "PHI",
            .schedule = Schedule::PriorityDelta,
            .async = true,
            .hwScheduler = false,
            .hwWorklist = false,
            .prefetchVertexData = false,
            .cheapScatter = true,
        },
        opt);
}

} // namespace depgraph::accel
