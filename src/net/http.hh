/**
 * @file
 * Minimal HTTP/1.1 support for the serving endpoints.
 *
 * dgserve's native protocol stays line-oriented; HTTP exists only so
 * standard tooling can hit `GET /metrics` (Prometheus text exposition)
 * and `GET /healthz` without a custom client. The parser handles
 * exactly what those need: a request line plus headers, keep-alive,
 * and a hard cap on the header block. Anything fancier (bodies,
 * chunked encoding, continuations) is rejected as 400.
 */

#ifndef DEPGRAPH_NET_HTTP_HH
#define DEPGRAPH_NET_HTTP_HH

#include <cstddef>
#include <string>
#include <string_view>

namespace depgraph::net
{

/** Largest request-line + header block we accept. */
inline constexpr std::size_t kMaxHttpHeaderBytes = 8192;

struct HttpRequest
{
    std::string method;  ///< "GET", "HEAD", ...
    std::string target;  ///< "/metrics", "/healthz?verbose=1", ...
    std::string traceId; ///< X-DG-Trace header value ("" = absent)
    bool keepAlive = true;
};

enum class HttpParse
{
    NeedMore, ///< header block not complete yet
    Ok,       ///< request parsed; `consumed` bytes used
    Bad,      ///< malformed or over the header cap; close with 400
};

/**
 * Try to parse one request from the front of `in`.
 * On Ok, `consumed` is the byte count of the request (including the
 * terminating blank line) to strip from the stream.
 */
HttpParse parseHttpRequest(std::string_view in, HttpRequest &req,
                           std::size_t &consumed);

/**
 * Does this byte prefix look like an HTTP request rather than a
 * dgserve protocol line? Safe to call on a partial prefix: returns
 * false until enough bytes arrived to tell (no protocol verb starts
 * like an HTTP method, so one token + space decides).
 */
bool looksLikeHttp(std::string_view prefix);

/** Serialize a full response (status line, headers, body). */
std::string httpResponse(int status, std::string_view content_type,
                         std::string_view body, bool keep_alive);

/** Reason phrase for the handful of statuses we emit. */
const char *httpReason(int status);

} // namespace depgraph::net

#endif // DEPGRAPH_NET_HTTP_HH
