#include "net/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace depgraph::net
{

Client::~Client()
{
    close();
}

Client::Client(Client &&o) noexcept
    : fd_(o.fd_), eof_(o.eof_), framer_(std::move(o.framer_)),
      error_(std::move(o.error_))
{
    o.fd_ = -1;
}

Client &
Client::operator=(Client &&o) noexcept
{
    if (this != &o) {
        close();
        fd_ = o.fd_;
        eof_ = o.eof_;
        framer_ = std::move(o.framer_);
        error_ = std::move(o.error_);
        o.fd_ = -1;
    }
    return *this;
}

bool
splitEndpoint(const std::string &endpoint, std::string &host,
              std::uint16_t &port)
{
    const auto colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon + 1 >= endpoint.size())
        return false;
    host = endpoint.substr(0, colon);
    try {
        const auto p = std::stoul(endpoint.substr(colon + 1));
        if (p == 0 || p > 65535)
            return false;
        port = static_cast<std::uint16_t>(p);
    } catch (...) {
        return false;
    }
    return !host.empty();
}

bool
Client::connectEndpoint(const std::string &endpoint,
                        std::chrono::milliseconds recv_timeout)
{
    std::string host;
    std::uint16_t port = 0;
    if (!splitEndpoint(endpoint, host, port)) {
        error_ = "bad endpoint '" + endpoint + "'";
        return false;
    }
    return connect(host, port, recv_timeout);
}

bool
Client::connect(const std::string &host, std::uint16_t port,
                std::chrono::milliseconds recv_timeout)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
        error_ = std::strerror(errno);
        return false;
    }
    ::sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        error_ = "bad address '" + host + "'";
        close();
        return false;
    }
    if (::connect(fd_, reinterpret_cast<::sockaddr *>(&addr),
                  sizeof(addr))
        != 0) {
        error_ = std::strerror(errno);
        close();
        return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (recv_timeout.count() > 0) {
        ::timeval tv{};
        tv.tv_sec = static_cast<time_t>(recv_timeout.count() / 1000);
        tv.tv_usec = static_cast<suseconds_t>(
            (recv_timeout.count() % 1000) * 1000);
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    eof_ = false;
    framer_.clear();
    return true;
}

bool
Client::sendAll(std::string_view data)
{
    while (!data.empty()) {
        const auto n =
            ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error_ = std::strerror(errno);
            return false;
        }
        data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
}

bool
Client::sendLine(std::string_view line)
{
    std::string framed(line);
    framed.push_back('\n');
    return sendAll(framed);
}

bool
Client::recvLine(std::string &line)
{
    if (framer_.next(line))
        return true;
    char buf[4096];
    for (;;) {
        const auto n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
            framer_.append(buf, static_cast<std::size_t>(n));
            if (framer_.next(line))
                return true;
            continue;
        }
        if (n == 0) {
            eof_ = true;
            error_ = "connection closed";
            return false;
        }
        if (errno == EINTR)
            continue;
        error_ = (errno == EAGAIN || errno == EWOULDBLOCK)
            ? "receive timeout"
            : std::strerror(errno);
        return false;
    }
}

std::string
Client::recvAll(std::size_t max_bytes)
{
    std::string out(framer_.raw());
    framer_.clear();
    char buf[4096];
    while (out.size() < max_bytes) {
        const auto n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
            out.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0)
            eof_ = true;
        else if (errno == EINTR)
            continue;
        break;
    }
    return out;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace depgraph::net
