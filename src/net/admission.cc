#include "net/admission.hh"

namespace depgraph::net
{

using service::RequestType;

AdmissionController::AdmissionController(const service::Stats &stats,
                                         AdmissionOptions opt)
    : stats_(stats), opt_(opt)
{}

std::optional<std::chrono::milliseconds>
AdmissionController::check(RequestType t)
{
    if (!enabled())
        return std::nullopt;
    maybeRefresh();
    const auto p99 = windowP99_[static_cast<std::size_t>(t)].load(
        std::memory_order_relaxed);
    if (p99 <= opt_.maxQueueWaitP99Micros)
        return std::nullopt;
    shed_.fetch_add(1, std::memory_order_relaxed);
    return opt_.retryAfter;
}

std::uint64_t
AdmissionController::windowP99Micros(RequestType t) const
{
    return windowP99_[static_cast<std::size_t>(t)].load(
        std::memory_order_relaxed);
}

void
AdmissionController::maybeRefresh()
{
    // try_lock: under contention one thread refreshes, the rest use
    // the cached p99 -- nobody queues behind the refresh.
    std::unique_lock lk(refreshMu_, std::try_to_lock);
    if (!lk.owns_lock())
        return;
    const auto now = std::chrono::steady_clock::now();
    if (everRefreshed_ && now - lastRefresh_ < opt_.window)
        return;
    refreshLocked();
    lastRefresh_ = now;
    everRefreshed_ = true;
}

void
AdmissionController::refreshLocked()
{
    for (std::size_t t = 0; t < service::kNumRequestTypes; ++t) {
        const auto &h = stats_.queueWaitHistogram(
            static_cast<RequestType>(t));

        std::array<std::uint64_t, obs::Histogram::kBuckets> delta{};
        std::uint64_t total = 0;
        for (std::size_t k = 0; k < obs::Histogram::kBuckets; ++k) {
            const auto cur = h.bucketCount(k);
            delta[k] = cur - prev_[t][k];
            prev_[t][k] = cur;
            total += delta[k];
        }
        if (total < opt_.minWindowSamples) {
            // Too little signal this window: fail open.
            windowP99_[t].store(0, std::memory_order_relaxed);
            continue;
        }
        const auto rank =
            static_cast<std::uint64_t>(0.99
                                       * static_cast<double>(total));
        std::uint64_t seen = 0, p99 = 0;
        for (std::size_t k = 0; k < obs::Histogram::kBuckets; ++k) {
            seen += delta[k];
            if (seen > rank) {
                p99 = obs::Histogram::bucketUpperBound(k);
                break;
            }
        }
        windowP99_[t].store(p99, std::memory_order_relaxed);
    }
}

} // namespace depgraph::net
