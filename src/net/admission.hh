/**
 * @file
 * Latency-driven admission control.
 *
 * Queue depth alone is a bad shed signal: a deep queue of cheap
 * requests is healthy, a shallow queue of slow ones is not. What a
 * client actually experiences is queue WAIT, and the service already
 * measures it per request type (service::Stats). The controller keeps
 * a sliding window over those histograms -- bucket-count deltas
 * between refreshes -- and sheds a request class once its windowed
 * p99 queue wait crosses the configured ceiling.
 *
 * Shedding is protocol-level, not TCP-level: the connection replies
 * `err 429 overloaded retry-after=<ms>` immediately (no dispatch, no
 * queue slot), so a well-behaved client backs off while the pool works
 * down the backlog. That converts collapse into bounded latency.
 *
 * check() is cheap enough for the per-request path: a relaxed load of
 * the cached p99; one caller per window interval additionally pays the
 * refresh (22 relaxed bucket loads per type) under a try_lock.
 */

#ifndef DEPGRAPH_NET_ADMISSION_HH
#define DEPGRAPH_NET_ADMISSION_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>

#include "service/stats.hh"

namespace depgraph::net
{

struct AdmissionOptions
{
    /** Shed when the windowed p99 queue wait exceeds this (0 = admission
     * control disabled). */
    std::uint64_t maxQueueWaitP99Micros = 0;
    /** Windows with fewer samples than this always admit (a cold or
     * idle service must not shed its first burst). */
    std::uint64_t minWindowSamples = 16;
    /** Backoff hint sent to shed clients. */
    std::chrono::milliseconds retryAfter{50};
    /** Sliding-window refresh period. */
    std::chrono::milliseconds window{250};
};

class AdmissionController
{
  public:
    AdmissionController(const service::Stats &stats,
                        AdmissionOptions opt);

    bool enabled() const { return opt_.maxQueueWaitP99Micros > 0; }

    /**
     * Admit or shed one request of type `t`.
     * @return empty to admit; otherwise the retry-after hint.
     */
    std::optional<std::chrono::milliseconds>
    check(service::RequestType t);

    /** Last computed windowed p99 for `t` (diagnostics / tests). */
    std::uint64_t windowP99Micros(service::RequestType t) const;

    std::uint64_t shedTotal() const
    {
        return shed_.load(std::memory_order_relaxed);
    }

  private:
    void maybeRefresh();
    void refreshLocked();

    const service::Stats &stats_;
    AdmissionOptions opt_;

    std::mutex refreshMu_;
    std::chrono::steady_clock::time_point lastRefresh_{};
    bool everRefreshed_ = false;

    /** Bucket counts at the last refresh, per request type. */
    std::array<std::array<std::uint64_t, obs::Histogram::kBuckets>,
               service::kNumRequestTypes>
        prev_{};

    std::array<std::atomic<std::uint64_t>, service::kNumRequestTypes>
        windowP99_{};
    std::atomic<std::uint64_t> shed_{0};
};

} // namespace depgraph::net

#endif // DEPGRAPH_NET_ADMISSION_HH
