/**
 * @file
 * Single-threaded epoll event loop.
 *
 * Ownership model: fd handlers are registered, modified and removed
 * only on the loop thread (or before run() starts). Other threads talk
 * to the loop exclusively through post(), which enqueues a closure and
 * wakes the loop via an eventfd -- that is how dispatcher threads hand
 * completed replies back to connections, and how the signal thread
 * initiates a drain.
 *
 * Level-triggered: handlers read/write until EAGAIN themselves, the
 * loop only routes readiness. A periodic tick callback (snapshot-store
 * TTL sweeps, admission refresh) rides the epoll_wait timeout.
 */

#ifndef DEPGRAPH_NET_EVENT_LOOP_HH
#define DEPGRAPH_NET_EVENT_LOOP_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace depgraph::net
{

class EventLoop
{
  public:
    /** Receives the ready EPOLL* event mask. */
    using Callback = std::function<void(std::uint32_t)>;

    EventLoop();
    ~EventLoop();

    EventLoop(const EventLoop &) = delete;
    EventLoop &operator=(const EventLoop &) = delete;

    /** False when epoll/eventfd creation failed at construction. */
    bool valid() const { return epfd_ >= 0 && wakeFd_ >= 0; }

    /** Register `fd` for `events` (loop thread only). The loop does
     * not own the fd; close it after remove(). */
    bool add(int fd, std::uint32_t events, Callback cb);

    /** Change the interest mask of a registered fd (loop thread). */
    bool modify(int fd, std::uint32_t events);

    /** Deregister (loop thread). Pending readiness is dropped. */
    void remove(int fd);

    /** Run `fn` on the loop thread soon. Thread-safe; usable before
     * run() and from handlers. */
    void post(std::function<void()> fn);

    /**
     * Dispatch until stop(). `tick` (>0) invokes `on_tick` on the
     * loop thread at roughly that period.
     */
    void run(std::chrono::milliseconds tick = std::chrono::milliseconds(0),
             std::function<void()> on_tick = {});

    /** Ask run() to return after the current iteration. Thread-safe. */
    void stop();

    bool running() const
    {
        return running_.load(std::memory_order_acquire);
    }

  private:
    void drainPosted();
    void drainWakeups();

    int epfd_ = -1;
    int wakeFd_ = -1;
    std::atomic<bool> stop_{false};
    std::atomic<bool> running_{false};

    /** shared_ptr so a handler that removes its own fd (connection
     * close) does not free the closure the loop is executing. */
    std::unordered_map<int, std::shared_ptr<Callback>> handlers_;

    std::mutex postMu_;
    std::vector<std::function<void()>> posted_;
};

} // namespace depgraph::net

#endif // DEPGRAPH_NET_EVENT_LOOP_HH
