#include "net/router.hh"

#include <mutex>

namespace depgraph::net
{

ShardRouter::ShardRouter(RouterOptions opt)
    : opt_(opt)
{
    if (opt_.replicas == 0)
        opt_.replicas = 1;
}

std::uint64_t
ShardRouter::hashKey(std::string_view s)
{
    std::uint64_t h = 14695981039346656037ull; // FNV offset basis
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull; // FNV prime
    }
    // Finalize (splitmix64): FNV alone clusters sequential suffixes,
    // which shows up as ring imbalance with few endpoints.
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h;
}

void
ShardRouter::add(const std::string &endpoint)
{
    std::unique_lock lk(mu_);
    if (!members_.insert(endpoint).second)
        return;
    for (unsigned i = 0; i < opt_.replicas; ++i)
        ring_.emplace(hashKey(endpoint + "#" + std::to_string(i)),
                      endpoint);
}

bool
ShardRouter::remove(const std::string &endpoint)
{
    std::unique_lock lk(mu_);
    if (members_.erase(endpoint) == 0)
        return false;
    for (auto it = ring_.begin(); it != ring_.end();) {
        if (it->second == endpoint)
            it = ring_.erase(it);
        else
            ++it;
    }
    return true;
}

std::size_t
ShardRouter::size() const
{
    std::shared_lock lk(mu_);
    return members_.size();
}

std::vector<std::string>
ShardRouter::endpoints() const
{
    std::shared_lock lk(mu_);
    return {members_.begin(), members_.end()};
}

std::string
ShardRouter::shardFor(std::string_view key) const
{
    std::shared_lock lk(mu_);
    if (ring_.empty())
        return {};
    auto it = ring_.lower_bound(hashKey(key));
    if (it == ring_.end())
        it = ring_.begin(); // wrap around the ring
    return it->second;
}

std::string
ShardRouter::partitionKey(const std::string &graph, VertexId v,
                          std::uint32_t partitions)
{
    if (partitions == 0)
        return graph;
    return graph + "/" + std::to_string(v % partitions);
}

std::string
ShardRouter::shardForVertex(const std::string &graph, VertexId v,
                            std::uint32_t partitions) const
{
    return shardFor(partitionKey(graph, v, partitions));
}

} // namespace depgraph::net
