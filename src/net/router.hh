/**
 * @file
 * ShardRouter: consistent-hash placement of graphs (and vertex-range
 * partitions of one graph) across service instances.
 *
 * Classic ring with virtual nodes: every endpoint owns `replicas`
 * points on a 64-bit ring; a key routes to the first point clockwise
 * from its hash. Adding or removing one endpoint therefore moves only
 * ~1/n of the keyspace instead of reshuffling everything -- the
 * property that lets a fleet scale horizontally while clients keep
 * warm per-shard state (the shard's fixpoint caches stay valid for the
 * graphs that did not move).
 *
 * Hashing is FNV-1a, NOT std::hash: routing must agree across
 * processes and library versions, because the client (dgload, or any
 * edge proxy) computes placement independently of the servers.
 *
 * Two key schemes:
 *  - whole graph:      key = graph name
 *  - vertex partition: key = "<graph>/<partition>", partition =
 *    vertex % partitions (contiguous round-robin ranges). One graph
 *    too hot for a single instance spreads its vertex ranges while
 *    every client still agrees where vertex v lives.
 */

#ifndef DEPGRAPH_NET_ROUTER_HH
#define DEPGRAPH_NET_ROUTER_HH

#include <cstdint>
#include <map>
#include <set>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace depgraph::net
{

struct RouterOptions
{
    /** Virtual nodes per endpoint; more = smoother balance. */
    unsigned replicas = 64;
};

class ShardRouter
{
  public:
    explicit ShardRouter(RouterOptions opt = {});

    /** Add an endpoint ("host:port"). Duplicate adds are no-ops. */
    void add(const std::string &endpoint);

    /** @return true if the endpoint was a member. */
    bool remove(const std::string &endpoint);

    std::size_t size() const;
    std::vector<std::string> endpoints() const;

    /** Endpoint owning `key`; "" when the ring is empty. */
    std::string shardFor(std::string_view key) const;

    std::string
    shardForGraph(const std::string &graph) const
    {
        return shardFor(graph);
    }

    /**
     * Endpoint owning vertex `v` of `graph` split into `partitions`
     * vertex ranges (partitions == 0 routes the whole graph).
     */
    std::string shardForVertex(const std::string &graph, VertexId v,
                               std::uint32_t partitions) const;

    /** The partition key shardForVertex() routes ("g/3"). */
    static std::string partitionKey(const std::string &graph,
                                    VertexId v,
                                    std::uint32_t partitions);

    /** FNV-1a 64-bit; stable across processes by construction. */
    static std::uint64_t hashKey(std::string_view s);

  private:
    mutable std::shared_mutex mu_;
    RouterOptions opt_;
    std::map<std::uint64_t, std::string> ring_; ///< point -> endpoint
    std::set<std::string> members_;
};

} // namespace depgraph::net

#endif // DEPGRAPH_NET_ROUTER_HH
