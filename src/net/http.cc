#include "net/http.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <sstream>

namespace depgraph::net
{

namespace
{

constexpr std::array<std::string_view, 5> kMethods = {
    "GET ", "HEAD ", "POST ", "PUT ", "DELETE ",
};

std::string_view
trim(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t'
                          || s.back() == '\r'))
        s.remove_suffix(1);
    return s;
}

bool
iequals(std::string_view a, std::string_view b)
{
    return a.size() == b.size()
        && std::equal(a.begin(), a.end(), b.begin(),
                      [](char x, char y) {
                          return std::tolower(static_cast<unsigned char>(
                                     x))
                              == std::tolower(
                                  static_cast<unsigned char>(y));
                      });
}

} // namespace

bool
looksLikeHttp(std::string_view prefix)
{
    for (const auto m : kMethods) {
        const auto n = std::min(prefix.size(), m.size());
        if (prefix.substr(0, n) == m.substr(0, n) && n == m.size())
            return true;
    }
    return false;
}

HttpParse
parseHttpRequest(std::string_view in, HttpRequest &req,
                 std::size_t &consumed)
{
    const auto end = in.find("\r\n\r\n");
    std::size_t term = 4;
    auto head_end = end;
    if (head_end == std::string_view::npos) {
        // Tolerate bare-LF clients (netcat scripts).
        head_end = in.find("\n\n");
        term = 2;
    }
    if (head_end == std::string_view::npos)
        return in.size() > kMaxHttpHeaderBytes ? HttpParse::Bad
                                               : HttpParse::NeedMore;
    if (head_end + term > kMaxHttpHeaderBytes)
        return HttpParse::Bad;
    consumed = head_end + term;

    const auto head = in.substr(0, head_end);
    const auto line_end = head.find('\n');
    const auto request_line =
        trim(line_end == std::string_view::npos ? head
                                                : head.substr(0, line_end));

    const auto sp1 = request_line.find(' ');
    if (sp1 == std::string_view::npos)
        return HttpParse::Bad;
    const auto sp2 = request_line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos)
        return HttpParse::Bad;
    req.method = std::string(request_line.substr(0, sp1));
    req.target =
        std::string(trim(request_line.substr(sp1 + 1, sp2 - sp1 - 1)));
    const auto version = trim(request_line.substr(sp2 + 1));
    if (version.substr(0, 5) != "HTTP/")
        return HttpParse::Bad;
    // HTTP/1.0 defaults to close; 1.1 to keep-alive.
    req.keepAlive = version != "HTTP/1.0";

    // Headers: only Connection matters to us.
    std::size_t pos =
        line_end == std::string_view::npos ? head.size() : line_end + 1;
    while (pos < head.size()) {
        auto eol = head.find('\n', pos);
        if (eol == std::string_view::npos)
            eol = head.size();
        const auto line = trim(head.substr(pos, eol - pos));
        pos = eol + 1;
        const auto colon = line.find(':');
        if (colon == std::string_view::npos)
            continue;
        const auto name = trim(line.substr(0, colon));
        const auto value = trim(line.substr(colon + 1));
        if (iequals(name, "connection")) {
            if (iequals(value, "close"))
                req.keepAlive = false;
            else if (iequals(value, "keep-alive"))
                req.keepAlive = true;
        } else if (iequals(name, "x-dg-trace")) {
            req.traceId = std::string(value);
        } else if (iequals(name, "content-length")
                   && value != "0") {
            // We serve GET/HEAD only; a body means a client we do not
            // understand. Refuse rather than desync the stream.
            return HttpParse::Bad;
        }
    }
    return HttpParse::Ok;
}

const char *
httpReason(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 503:
        return "Service Unavailable";
    }
    return "Unknown";
}

std::string
httpResponse(int status, std::string_view content_type,
             std::string_view body, bool keep_alive)
{
    std::ostringstream os;
    os << "HTTP/1.1 " << status << " " << httpReason(status) << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: " << (keep_alive ? "keep-alive" : "close")
       << "\r\n\r\n";
    os.write(body.data(),
             static_cast<std::streamsize>(body.size()));
    return os.str();
}

} // namespace depgraph::net
