/**
 * @file
 * Blocking TCP client for the dgserve line protocol.
 *
 * The server side is deliberately non-blocking; clients (dgload, the
 * loopback tests, ad-hoc scripts) are simpler as plain blocking
 * sockets with an optional receive timeout. Line replies are framed
 * through the same LineFramer the server uses, so both ends agree on
 * the wire format by construction.
 */

#ifndef DEPGRAPH_NET_CLIENT_HH
#define DEPGRAPH_NET_CLIENT_HH

#include <chrono>
#include <cstdint>
#include <string>

#include "net/framing.hh"

namespace depgraph::net
{

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&o) noexcept;
    Client &operator=(Client &&o) noexcept;

    /** Connect to host:port. @return false on failure (see error()). */
    bool connect(const std::string &host, std::uint16_t port,
                 std::chrono::milliseconds recv_timeout =
                     std::chrono::milliseconds(10000));

    /** Connect to "host:port". */
    bool connectEndpoint(const std::string &endpoint,
                         std::chrono::milliseconds recv_timeout =
                             std::chrono::milliseconds(10000));

    bool connected() const { return fd_ >= 0; }
    const std::string &error() const { return error_; }

    /** Write all bytes (appends nothing; include your own '\n'). */
    bool sendAll(std::string_view data);

    /** Send one command line (appends '\n'). */
    bool sendLine(std::string_view line);

    /**
     * Blocking read of the next reply line. @return false on timeout,
     * EOF, or error (error() distinguishes; eof() true on clean EOF).
     */
    bool recvLine(std::string &line);

    /** Read until EOF or `max_bytes` (HTTP responses, debugging). */
    std::string recvAll(std::size_t max_bytes = 1 << 20);

    bool eof() const { return eof_; }

    void close();

    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    bool eof_ = false;
    LineFramer framer_{1 << 20}; // replies can be large (metrics)
    std::string error_;
};

/** Split "host:port"; @return false on malformed input. */
bool splitEndpoint(const std::string &endpoint, std::string &host,
                   std::uint16_t &port);

} // namespace depgraph::net

#endif // DEPGRAPH_NET_CLIENT_HH
