#include "net/connection.hh"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>

#include "common/failpoint.hh"
#include "net/event_loop.hh"
#include "net/server.hh"

namespace depgraph::net
{

Connection::Connection(Server &srv, EventLoop &loop, int fd,
                       std::size_t max_line_bytes)
    : srv_(srv), loop_(loop), fd_(fd), framer_(max_line_bytes)
{}

Connection::~Connection()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
Connection::start()
{
    auto self = shared_from_this();
    loop_.add(fd_, EPOLLIN, [self](std::uint32_t ev) {
        self->onEvent(ev);
    });
}

void
Connection::close()
{
    if (fd_ < 0)
        return;
    loop_.remove(fd_);
    ::close(fd_);
    fd_ = -1;
    srv_.onConnectionClosed(*this);
}

void
Connection::onEvent(std::uint32_t events)
{
    if (events & (EPOLLHUP | EPOLLERR)) {
        close();
        return;
    }
    if (events & EPOLLIN)
        onReadable();
    if (fd_ >= 0 && (events & EPOLLOUT))
        flushWrites();
}

void
Connection::onReadable()
{
    std::array<char, 4096> buf;
    for (;;) {
        const auto n = ::recv(fd_, buf.data(), buf.size(), 0);
        if (n > 0) {
            srv_.noteBytesRead(static_cast<std::size_t>(n));
            if (!framer_.append(buf.data(),
                                static_cast<std::size_t>(n))
                && mode_ != Mode::Http) {
                failOversized();
                return;
            }
            continue;
        }
        if (n == 0) {
            // Peer closed. Anything in flight completes into a dead
            // connection and is dropped (see completeRequest).
            close();
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        close();
        return;
    }
    processBuffer();
}

void
Connection::processBuffer()
{
    if (fd_ < 0)
        return;
    if (mode_ == Mode::Unknown) {
        const auto &raw = framer_.raw();
        if (looksLikeHttp(raw)) {
            mode_ = Mode::Http;
        } else if (raw.find('\n') != std::string::npos
                   || raw.size() >= 8) {
            // Longest HTTP method prefix is "DELETE " (7 bytes); 8
            // bytes without a match, or any complete line, means the
            // dgserve line protocol.
            mode_ = Mode::Line;
        } else {
            return; // not enough bytes to tell yet
        }
    }
    if (mode_ == Mode::Http) {
        processHttp();
        return;
    }
    std::string line;
    while (framer_.next(line))
        pendingLines_.push_back(std::move(line));
    dispatchPending();
}

void
Connection::processHttp()
{
    while (fd_ >= 0 && !closeAfterFlush_ && !inFlight_) {
        HttpRequest req;
        std::size_t consumed = 0;
        const auto st =
            parseHttpRequest(framer_.raw(), req, consumed);
        if (st == HttpParse::NeedMore)
            return;
        if (st == HttpParse::Bad) {
            sendReply(httpResponse(400, "text/plain",
                                   "bad request\n", false));
            closeAfterFlush_ = true;
            flushWrites();
            return;
        }
        framer_.consume(consumed);
        srv_.noteHttpRequest();

        const bool head = req.method == "HEAD";
        if (!head && req.method != "GET") {
            sendReply(httpResponse(405, "text/plain",
                                   "only GET/HEAD\n", false));
            closeAfterFlush_ = true;
        } else if (draining_) {
            sendReply(httpResponse(503, "text/plain", "draining\n",
                                   false));
            closeAfterFlush_ = true;
        } else {
            const auto path =
                req.target.substr(0, req.target.find('?'));
            if (path == "/healthz") {
                sendReply(httpResponse(200, "text/plain", "ok\n",
                                       req.keepAlive));
                if (!req.keepAlive)
                    closeAfterFlush_ = true;
            } else if (path == "/metrics") {
                // Rendering walks the registry; keep it off the loop.
                inFlight_ = true;
                srv_.dispatchMetrics(shared_from_this(),
                                     req.keepAlive, head,
                                     std::move(req.traceId));
            } else if (path == "/debug/slowlog") {
                inFlight_ = true;
                srv_.dispatchSlowlog(shared_from_this(),
                                     req.keepAlive, head,
                                     std::move(req.traceId));
            } else {
                sendReply(httpResponse(404, "text/plain",
                                       "not found\n",
                                       req.keepAlive));
                if (!req.keepAlive)
                    closeAfterFlush_ = true;
            }
        }
    }
    flushWrites();
}

void
Connection::dispatchPending()
{
    while (fd_ >= 0 && !inFlight_ && !pendingLines_.empty()) {
        auto line = std::move(pendingLines_.front());
        pendingLines_.pop_front();

        if (draining_) {
            sendReply("err 503 shutting down\n");
            continue;
        }
        if (const auto retry = srv_.admitLine(line)) {
            sendReply("err 429 overloaded retry-after="
                      + std::to_string(retry->count()) + "\n");
            continue;
        }
        inFlight_ = true;
        srv_.dispatchLine(shared_from_this(), std::move(line));
    }
    if (draining_ && idle())
        close();
}

void
Connection::completeRequest(std::string reply, bool then_close)
{
    inFlight_ = false;
    if (fd_ < 0)
        return; // client vanished mid-request: drop the reply
    if (!reply.empty())
        sendReply(reply);
    if (then_close) {
        closeAfterFlush_ = true;
        flushWrites();
        return;
    }
    if (mode_ == Mode::Http) {
        processHttp(); // maybe a pipelined request is buffered
        return;
    }
    dispatchPending();
}

void
Connection::beginDrain()
{
    draining_ = true;
    if (idle())
        close();
}

void
Connection::failOversized()
{
    srv_.noteOversized();
    // The line cannot be parsed and the stream is unsynchronized
    // beyond it: report and hang up. Stop reading so a firehose
    // client cannot keep us busy while the reply drains.
    ::shutdown(fd_, SHUT_RD);
    sendReply("err 413 line too long (max "
              + std::to_string(framer_.maxLineBytes()) + " bytes)\n");
    closeAfterFlush_ = true;
    flushWrites();
}

void
Connection::sendReply(std::string_view text)
{
    if (fd_ < 0)
        return;
    out_.append(text);
    flushWrites();
}

void
Connection::flushWrites()
{
    if (fd_ < 0)
        return;
    // Chaos site: `error` drops the connection mid-reply (the client
    // sees a reset after its request may already have been applied --
    // exactly the ambiguity reconnect logic must survive); `exit`
    // kills the server between apply and reply.
    if (!out_.empty() && dg_failpoint("net.write")) {
        close();
        return;
    }
    while (!out_.empty()) {
        const auto n = ::send(fd_, out_.data(), out_.size(),
                              MSG_NOSIGNAL);
        if (n > 0) {
            srv_.noteBytesWritten(static_cast<std::size_t>(n));
            out_.erase(0, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        close(); // broken pipe etc.
        return;
    }
    if (out_.empty() && closeAfterFlush_) {
        close();
        return;
    }
    updateInterest();
    if (draining_ && idle())
        close();
}

void
Connection::updateInterest()
{
    const bool want = !out_.empty();
    if (want == wantWrite_ || fd_ < 0)
        return;
    wantWrite_ = want;
    loop_.modify(fd_, EPOLLIN | (want ? EPOLLOUT : 0u));
}

} // namespace depgraph::net
