/**
 * @file
 * Line framing for untrusted byte streams.
 *
 * The dgserve protocol is newline-delimited; a socket delivers it in
 * arbitrary fragments (partial lines, several pipelined lines in one
 * read). LineFramer accumulates bytes and hands back complete lines,
 * enforcing a hard cap on the length of an unterminated line so a
 * client that never sends '\n' cannot grow the buffer without bound.
 *
 * Header-only: the client (tools/dgload), the server connection, and
 * the framing micro-bench all share the exact same code path.
 */

#ifndef DEPGRAPH_NET_FRAMING_HH
#define DEPGRAPH_NET_FRAMING_HH

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace depgraph::net
{

class LineFramer
{
  public:
    explicit LineFramer(std::size_t max_line_bytes = 8192)
        : max_(max_line_bytes)
    {}

    /**
     * Append raw bytes. @return false when the unterminated tail now
     * exceeds the cap -- the stream is hostile or corrupt and the
     * caller should reply 413 and close. Already-complete lines
     * buffered before the overflow are still retrievable.
     */
    bool
    append(const char *data, std::size_t n)
    {
        buf_.append(data, n);
        // The chunk is the buffer's new suffix, so only it needs
        // scanning to keep the tail count current: appends stay
        // O(chunk), never O(buffer).
        const auto nl = std::string_view(data, n).rfind('\n');
        if (nl != std::string_view::npos)
            tail_ = n - nl - 1;
        else
            tail_ += n;
        return tail_ <= max_;
    }

    bool
    append(std::string_view s)
    {
        return append(s.data(), s.size());
    }

    /**
     * Pop the next complete line into `line` (terminator stripped;
     * a trailing '\r' is stripped too, so CRLF clients work).
     * @return false when no complete line is buffered.
     *
     * Consumed lines advance a head offset instead of erasing the
     * buffer's front, so draining a large pipelined burst is linear
     * in its size, not quadratic.
     */
    bool
    next(std::string &line)
    {
        const auto nl = buf_.find('\n', scanned_);
        if (nl == std::string::npos) {
            // Remember how far we scanned so pathological inputs do
            // not make next() quadratic across appends.
            scanned_ = buf_.size();
            return false;
        }
        std::size_t len = nl - head_;
        if (len > 0 && buf_[nl - 1] == '\r')
            --len;
        line.assign(buf_, head_, len);
        head_ = nl + 1;
        scanned_ = head_;
        compact();
        return true;
    }

    /** Bytes buffered past the last complete line. */
    std::size_t tailBytes() const { return tail_; }

    std::size_t bufferedBytes() const { return buf_.size() - head_; }
    std::size_t maxLineBytes() const { return max_; }

    /** The raw buffer (HTTP detection peeks at the first bytes). */
    std::string_view
    raw() const
    {
        return std::string_view(buf_).substr(head_);
    }

    /** Drop `n` bytes from the front (an HTTP request was parsed out
     * of the raw buffer by other means). */
    void
    consume(std::size_t n)
    {
        head_ += std::min(n, buf_.size() - head_);
        scanned_ = head_;
        const auto rest = raw();
        const auto nl = rest.rfind('\n');
        tail_ = nl == std::string_view::npos ? rest.size()
                                             : rest.size() - nl - 1;
        compact();
    }

    void
    clear()
    {
        buf_.clear();
        head_ = scanned_ = tail_ = 0;
    }

  private:
    /**
     * Reclaim the consumed prefix once it dominates the buffer. The
     * moved remainder is at most the bytes consumed since the last
     * compaction, so the cost amortizes to O(1) per consumed byte.
     */
    void
    compact()
    {
        if (head_ >= 4096 && head_ * 2 >= buf_.size()) {
            buf_.erase(0, head_);
            scanned_ -= head_;
            head_ = 0;
        }
    }

    std::string buf_;
    std::size_t head_ = 0;    ///< bytes already handed out
    std::size_t scanned_ = 0; ///< '\n'-free prefix already scanned
    std::size_t tail_ = 0;    ///< bytes past the last '\n'
    std::size_t max_;
};

} // namespace depgraph::net

#endif // DEPGRAPH_NET_FRAMING_HH
