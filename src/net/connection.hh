/**
 * @file
 * One accepted client connection.
 *
 * A connection auto-detects its protocol from the first bytes: HTTP
 * methods are uppercase ("GET /metrics"), dgserve verbs are lowercase,
 * so one token decides. Line mode frames newline-delimited protocol
 * commands through LineFramer (with the oversized-line cap); HTTP mode
 * parses requests for the /metrics and /healthz endpoints.
 *
 * Threading: every method here runs on the event-loop thread. Request
 * execution happens on the server's dispatcher threads; they hand the
 * reply back via EventLoop::post(completeRequest). `inFlight_` plus
 * the pending-line queue preserve reply ordering for pipelined
 * clients: one request per connection executes at a time, later lines
 * wait their turn (concurrency comes from many connections).
 *
 * Lifetime: shared_ptr. The server's registry holds one reference;
 * an in-flight dispatch holds another, so a client that disconnects
 * mid-request leaves a harmless orphan whose completion is dropped.
 */

#ifndef DEPGRAPH_NET_CONNECTION_HH
#define DEPGRAPH_NET_CONNECTION_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "net/framing.hh"
#include "net/http.hh"

namespace depgraph::net
{

class EventLoop;
class Server;

class Connection : public std::enable_shared_from_this<Connection>
{
  public:
    Connection(Server &srv, EventLoop &loop, int fd,
               std::size_t max_line_bytes);
    ~Connection();

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    /** Register with the loop; call once, right after accept. */
    void start();

    /** Deregister and close the socket. Idempotent. */
    void close();

    bool isClosed() const { return fd_ < 0; }

    /** No request executing, none queued, nothing left to write.
     * Unconsumed receive bytes count as queued work: a pipelined
     * HTTP request still in the framer must be answered (503 during
     * a drain), not dropped by an early close. */
    bool
    idle() const
    {
        return !inFlight_ && pendingLines_.empty() && out_.empty()
            && framer_.raw().empty();
    }

    /** Server began draining: finish what is queued, then go away.
     * Lines arriving from now on are refused with err 503. */
    void beginDrain();

    /** Dispatcher finished a request (posted back to the loop).
     * `reply` already ends in '\n' (or is empty for silent lines);
     * `then_close` closes once the write buffer flushes. */
    void completeRequest(std::string reply, bool then_close);

    int fd() const { return fd_; }

  private:
    enum class Mode
    {
        Unknown,
        Line,
        Http,
    };

    void onEvent(std::uint32_t events);
    void onReadable();
    void processBuffer();
    void processHttp();
    void dispatchPending();
    void sendReply(std::string_view text);
    void flushWrites();
    void updateInterest();
    void failOversized();

    Server &srv_;
    EventLoop &loop_;
    int fd_;
    Mode mode_ = Mode::Unknown;
    LineFramer framer_;
    std::deque<std::string> pendingLines_;
    std::string out_;          ///< bytes awaiting write
    bool inFlight_ = false;    ///< a dispatcher owns one request
    bool draining_ = false;
    bool closeAfterFlush_ = false;
    bool wantWrite_ = false;   ///< EPOLLOUT currently subscribed
};

} // namespace depgraph::net

#endif // DEPGRAPH_NET_CONNECTION_HH
