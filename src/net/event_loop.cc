#include "net/event_loop.hh"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <utility>

namespace depgraph::net
{

EventLoop::EventLoop()
{
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wakeFd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (valid()) {
        ::epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = wakeFd_;
        ::epoll_ctl(epfd_, EPOLL_CTL_ADD, wakeFd_, &ev);
    }
}

EventLoop::~EventLoop()
{
    if (wakeFd_ >= 0)
        ::close(wakeFd_);
    if (epfd_ >= 0)
        ::close(epfd_);
}

bool
EventLoop::add(int fd, std::uint32_t events, Callback cb)
{
    ::epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0)
        return false;
    handlers_[fd] = std::make_shared<Callback>(std::move(cb));
    return true;
}

bool
EventLoop::modify(int fd, std::uint32_t events)
{
    ::epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    return ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void
EventLoop::remove(int fd)
{
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    handlers_.erase(fd);
}

void
EventLoop::post(std::function<void()> fn)
{
    {
        std::lock_guard lk(postMu_);
        posted_.push_back(std::move(fn));
    }
    const std::uint64_t one = 1;
    // A full eventfd counter (EAGAIN) still wakes the loop; short
    // writes cannot happen for 8 bytes.
    [[maybe_unused]] const auto n =
        ::write(wakeFd_, &one, sizeof(one));
}

void
EventLoop::drainWakeups()
{
    std::uint64_t v = 0;
    while (::read(wakeFd_, &v, sizeof(v)) > 0) {
    }
}

void
EventLoop::drainPosted()
{
    std::vector<std::function<void()>> batch;
    {
        std::lock_guard lk(postMu_);
        batch.swap(posted_);
    }
    for (auto &fn : batch)
        fn();
}

void
EventLoop::run(std::chrono::milliseconds tick,
               std::function<void()> on_tick)
{
    using clock = std::chrono::steady_clock;
    running_.store(true, std::memory_order_release);
    stop_.store(false, std::memory_order_release);

    const bool ticking = tick.count() > 0 && on_tick;
    auto next_tick = ticking ? clock::now() + tick
                             : clock::time_point::max();

    std::array<::epoll_event, 64> events;
    while (!stop_.load(std::memory_order_acquire)) {
        int timeout = -1;
        if (ticking) {
            const auto now = clock::now();
            if (now >= next_tick) {
                on_tick();
                next_tick = now + tick;
            }
            timeout = static_cast<int>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    next_tick - clock::now())
                    .count());
            if (timeout < 0)
                timeout = 0;
        }
        const int n = ::epoll_wait(epfd_, events.data(),
                                   static_cast<int>(events.size()),
                                   timeout);
        if (n < 0)
            continue; // EINTR
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == wakeFd_) {
                drainWakeups();
                continue;
            }
            // A handler earlier in this batch may have removed this
            // fd (e.g. close cascading); look it up fresh.
            const auto it = handlers_.find(fd);
            if (it == handlers_.end())
                continue;
            const auto cb = it->second; // keep alive across the call
            (*cb)(events[i].events);
        }
        drainPosted();
    }
    drainPosted(); // run closures posted right before stop()
    running_.store(false, std::memory_order_release);
}

void
EventLoop::stop()
{
    stop_.store(true, std::memory_order_release);
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n =
        ::write(wakeFd_, &one, sizeof(one));
}

} // namespace depgraph::net
