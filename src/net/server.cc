#include "net/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/failpoint.hh"
#include "obs/slowlog.hh"
#include "obs/span.hh"

namespace depgraph::net
{

using service::RequestType;

namespace
{

/** The line with any leading `trace=<id>` token stripped, so the
 * admission/span classification sees the actual verb. */
const std::string &
withoutTraceToken(const std::string &line, std::string &storage)
{
    std::uint64_t id = 0;
    if (service::splitTraceToken(line, id, storage))
        return storage;
    return line;
}

/** Admission class of a protocol line; control verbs (stats, drain,
 * help, metrics, quit, ...) return nullopt and are never shed. */
std::optional<RequestType>
admissionClass(const std::string &raw_line)
{
    std::string storage;
    const std::string &line = withoutTraceToken(raw_line, storage);
    const auto start = line.find_first_not_of(" \t");
    if (start == std::string::npos)
        return std::nullopt;
    const auto end = line.find_first_of(" \t", start);
    const auto verb = line.substr(start, end == std::string::npos
                                             ? std::string::npos
                                             : end - start);
    if (verb == "query")
        return RequestType::Query;
    if (verb == "update" || verb == "del" || verb == "delete")
        return RequestType::StreamUpdates;
    if (verb == "flush")
        return RequestType::Flush;
    if (verb == "load")
        return RequestType::Load;
    return std::nullopt;
}

/** Stable span name for a protocol line's verb. */
const char *
spanName(const std::string &line)
{
    const auto cls = admissionClass(line);
    if (!cls)
        return "control";
    switch (*cls) {
      case RequestType::Query:
        return "query";
      case RequestType::StreamUpdates:
        return "update";
      case RequestType::Flush:
        return "flush";
      case RequestType::Load:
        return "load";
    }
    return "control";
}

} // namespace

Server::Server(service::GraphService &svc, ServerOptions opt)
    : svc_(svc), opt_(std::move(opt)),
      admission_(svc.rawStats(), opt_.admission)
{
    auto &reg = obs::registry();
    mAccepted_ = &reg.counter("dg_net_connections_accepted_total",
                              "TCP connections accepted");
    mClosed_ = &reg.counter("dg_net_connections_closed_total",
                            "TCP connections closed");
    mRejectedConns_ =
        &reg.counter("dg_net_connections_rejected_total",
                     "connections refused at the cap or during drain");
    mActive_ = &reg.gauge("dg_net_connections_active",
                          "currently open connections");
    mBytesIn_ = &reg.counter("dg_net_bytes_read_total",
                             "bytes read from clients");
    mBytesOut_ = &reg.counter("dg_net_bytes_written_total",
                              "bytes written to clients");
    mLineRequests_ = &reg.counter("dg_net_requests_total",
                                  "requests served by protocol",
                                  {{"proto", "line"}});
    mHttpRequests_ = &reg.counter("dg_net_requests_total",
                                  "requests served by protocol",
                                  {{"proto", "http"}});
    mErrReplies_ = &reg.counter("dg_net_protocol_errors_total",
                                "line requests answered with err");
    mShed_ = &reg.counter("dg_net_shed_total",
                          "requests shed by admission control");
    mOversized_ = &reg.counter("dg_net_oversized_lines_total",
                               "connections dropped for oversized "
                               "frames");
    mRequestUs_ = &reg.histogram("dg_net_request_us",
                                 "dispatch-to-reply latency of line "
                                 "requests (us)");
}

Server::~Server()
{
    stop();
}

bool
Server::start()
{
    if (running())
        return true;
    if (!loop_.valid()) {
        error_ = "epoll unavailable";
        return false;
    }

    listenFd_ = ::socket(AF_INET,
                         SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    if (listenFd_ < 0) {
        error_ = std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    ::sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opt_.port);
    if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr)
        != 1) {
        error_ = "bad listen address '" + opt_.host + "'";
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<::sockaddr *>(&addr),
               sizeof(addr))
            != 0
        || ::listen(listenFd_, 128) != 0) {
        error_ = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    ::socklen_t len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<::sockaddr *>(&addr),
                  &len);
    boundPort_ = ntohs(addr.sin_port);

    {
        std::lock_guard lk(workMu_);
        workStop_ = false;
    }
    const unsigned nd = opt_.dispatchers ? opt_.dispatchers : 1;
    dispatchers_.reserve(nd);
    for (unsigned i = 0; i < nd; ++i)
        dispatchers_.emplace_back([this] { dispatcherLoop(); });

    running_.store(true, std::memory_order_release);
    draining_.store(false, std::memory_order_release);

    loopThread_ = std::thread([this] {
        loop_.add(listenFd_, EPOLLIN,
                  [this](std::uint32_t) { acceptReady(); });
        loop_.run(opt_.tickInterval, [this] { onTick(); });
    });
    return true;
}

std::string
Server::endpoint() const
{
    std::ostringstream os;
    os << opt_.host << ":" << boundPort_;
    return os.str();
}

void
Server::acceptReady()
{
    for (;;) {
        const int fd = ::accept4(listenFd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // EAGAIN and friends
        }
        if (draining_.load(std::memory_order_acquire)
            || conns_.size() >= opt_.maxConnections) {
            mRejectedConns_->inc();
            ::close(fd);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        acceptedConns_.fetch_add(1, std::memory_order_relaxed);
        mAccepted_->inc();
        auto conn = std::make_shared<Connection>(*this, loop_, fd,
                                                 opt_.maxLineBytes);
        conns_.emplace(fd, conn);
        activeConns_.store(conns_.size(), std::memory_order_relaxed);
        mActive_->set(static_cast<double>(conns_.size()));
        conn->start();
    }
}

void
Server::onConnectionClosed(Connection &conn)
{
    mClosed_->inc();
    // The fd is already -1 by the time close() notifies; erase by
    // identity.
    for (auto it = conns_.begin(); it != conns_.end();) {
        if (it->second.get() == &conn)
            it = conns_.erase(it);
        else
            ++it;
    }
    activeConns_.store(conns_.size(), std::memory_order_relaxed);
    mActive_->set(static_cast<double>(conns_.size()));
    if (draining_.load(std::memory_order_acquire) && conns_.empty())
        notifyDrained();
}

std::optional<std::chrono::milliseconds>
Server::admitLine(const std::string &line)
{
    if (!admission_.enabled())
        return std::nullopt;
    const auto cls = admissionClass(line);
    if (!cls)
        return std::nullopt;
    const auto verdict = admission_.check(*cls);
    if (verdict)
        mShed_->inc();
    return verdict;
}

void
Server::dispatchLine(std::shared_ptr<Connection> conn,
                     std::string line)
{
    enqueueWork([this, conn = std::move(conn),
                 line = std::move(line)] {
        const auto start = std::chrono::steady_clock::now();
        // Delay site: hold a request on the dispatcher (e.g. while a
        // test flips the server into drain underneath it).
        (void)dg_failpoint("net.dispatch_line");
        service::CommandResult r;
        {
            obs::span::Scoped span("net", spanName(line));
            r = service::runTracedCommandLine(svc_, line);
        }
        mLineRequests_->inc();
        if (r.output.rfind("err", 0) == 0)
            mErrReplies_->inc();
        mRequestUs_->record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
        std::string reply =
            r.output.empty() ? std::string() : r.output + "\n";
        loop_.post([conn, reply = std::move(reply),
                    quit = r.quit]() mutable {
            conn->completeRequest(std::move(reply), quit);
        });
    });
}

void
Server::dispatchMetrics(std::shared_ptr<Connection> conn,
                        bool keep_alive, bool head_only,
                        std::string trace_header)
{
    enqueueWork([this, conn = std::move(conn), keep_alive, head_only,
                 trace_header = std::move(trace_header)] {
        (void)dg_failpoint("net.http_metrics");
        // An X-DG-Trace header traces the scrape itself (the HTTP leg
        // of a cross-shard request id).
        std::uint64_t trace_id = 0;
        if (!trace_header.empty())
            obs::span::parseTraceId(trace_header, trace_id);
        auto req = obs::span::beginRequest(trace_id);
        std::string body;
        {
            obs::span::RequestScope bind(req);
            obs::span::Scoped span("net", "http_metrics");
            svc_.publishStats();
            body = obs::registry().renderPrometheus();
        }
        obs::span::finishRequest(req);
        auto reply = httpResponse(
            200, "text/plain; version=0.0.4",
            head_only ? std::string_view() : std::string_view(body),
            keep_alive);
        loop_.post([conn, reply = std::move(reply),
                    keep_alive]() mutable {
            conn->completeRequest(std::move(reply), !keep_alive);
        });
    });
}

void
Server::dispatchSlowlog(std::shared_ptr<Connection> conn,
                        bool keep_alive, bool head_only,
                        std::string trace_header)
{
    enqueueWork([this, conn = std::move(conn), keep_alive, head_only,
                 trace_header = std::move(trace_header)] {
        std::uint64_t trace_id = 0;
        if (!trace_header.empty())
            obs::span::parseTraceId(trace_header, trace_id);
        auto req = obs::span::beginRequest(trace_id);
        std::string body;
        {
            obs::span::RequestScope bind(req);
            obs::span::Scoped span("net", "http_slowlog");
            body = obs::slowLog().renderJsonLines();
        }
        obs::span::finishRequest(req);
        auto reply = httpResponse(
            200, "application/x-ndjson",
            head_only ? std::string_view() : std::string_view(body),
            keep_alive);
        loop_.post([conn, reply = std::move(reply),
                    keep_alive]() mutable {
            conn->completeRequest(std::move(reply), !keep_alive);
        });
    });
}

void
Server::onTick()
{
    svc_.store().sweep();
    mActive_->set(static_cast<double>(conns_.size()));
}

void
Server::beginDrain()
{
    if (draining_.exchange(true, std::memory_order_acq_rel))
        return;
    loop_.post([this] {
        if (listenFd_ >= 0) {
            loop_.remove(listenFd_);
            ::close(listenFd_);
            listenFd_ = -1;
        }
        // Snapshot: beginDrain() may close idle connections, which
        // mutates conns_ under our feet.
        std::vector<std::shared_ptr<Connection>> snapshot;
        snapshot.reserve(conns_.size());
        for (auto &[fd, c] : conns_)
            snapshot.push_back(c);
        for (auto &c : snapshot)
            c->beginDrain();
        if (conns_.empty())
            notifyDrained();
    });
}

void
Server::notifyDrained()
{
    // Lock before notifying: drainAndStop() checks the atomic under
    // drainMu_, so an unsynchronized notify could slip between its
    // predicate check and the wait (missed wakeup).
    std::lock_guard lk(drainMu_);
    drainCv_.notify_all();
}

bool
Server::drainAndStop(std::chrono::milliseconds deadline)
{
    if (!running())
        return true;
    const auto until = std::chrono::steady_clock::now() + deadline;
    beginDrain();

    bool conns_done;
    {
        std::unique_lock lk(drainMu_);
        conns_done = drainCv_.wait_until(lk, until, [&] {
            return activeConns_.load(std::memory_order_acquire) == 0;
        });
    }
    if (!conns_done)
        loop_.post([this] { closeAllConnections(); });

    // Whatever budget remains goes to the service: finish accepted
    // requests, then flush pending update batches (always flushed,
    // even on timeout -- acknowledged updates are never dropped).
    const auto now = std::chrono::steady_clock::now();
    const auto remaining =
        now < until ? std::chrono::duration_cast<
                          std::chrono::milliseconds>(until - now)
                    : std::chrono::milliseconds(0);
    const bool svc_done = svc_.drainFor(remaining);

    stop();
    return conns_done && svc_done;
}

void
Server::closeAllConnections()
{
    std::vector<std::shared_ptr<Connection>> snapshot;
    snapshot.reserve(conns_.size());
    for (auto &[fd, c] : conns_)
        snapshot.push_back(c);
    for (auto &c : snapshot)
        c->close();
    if (conns_.empty())
        notifyDrained();
}

void
Server::stop()
{
    if (!running_.exchange(false, std::memory_order_acq_rel))
        return;
    draining_.store(true, std::memory_order_release);
    loop_.post([this] {
        closeAllConnections();
        if (listenFd_ >= 0) {
            loop_.remove(listenFd_);
            ::close(listenFd_);
            listenFd_ = -1;
        }
        loop_.stop();
    });
    joinThreads();
}

void
Server::joinThreads()
{
    if (loopThread_.joinable())
        loopThread_.join();
    {
        std::lock_guard lk(workMu_);
        workStop_ = true;
    }
    workCv_.notify_all();
    for (auto &t : dispatchers_)
        if (t.joinable())
            t.join();
    dispatchers_.clear();
}

void
Server::enqueueWork(std::function<void()> fn)
{
    {
        std::lock_guard lk(workMu_);
        work_.push_back(std::move(fn));
    }
    workCv_.notify_one();
}

void
Server::dispatcherLoop()
{
    for (;;) {
        std::function<void()> fn;
        {
            std::unique_lock lk(workMu_);
            workCv_.wait(lk, [&] {
                return workStop_ || !work_.empty();
            });
            if (work_.empty()) {
                if (workStop_)
                    return;
                continue;
            }
            fn = std::move(work_.front());
            work_.pop_front();
        }
        fn();
    }
}

void
Server::noteBytesRead(std::size_t n)
{
    mBytesIn_->inc(n);
}

void
Server::noteBytesWritten(std::size_t n)
{
    mBytesOut_->inc(n);
}

void
Server::noteOversized()
{
    mOversized_->inc();
}

void
Server::noteHttpRequest()
{
    mHttpRequests_->inc();
}

} // namespace depgraph::net
