/**
 * @file
 * net::Server -- the TCP front end of a GraphService.
 *
 * Architecture (one process = one shard of a ShardRouter fleet):
 *
 *   accept ──▶ event loop (epoll, 1 thread)
 *                │  frames lines / parses HTTP, applies admission
 *                ▼
 *              dispatcher threads ──▶ service::runCommandLine()
 *                │                     (blocks on the service's own
 *                ▼                      worker pool like any client)
 *              loop.post(reply) ──▶ connection write buffer
 *
 * The event loop never blocks on the service: requests hop to a small
 * dispatcher pool, so one slow query stalls only its own connection
 * (ordering is per-connection) while the loop keeps serving everyone
 * else. Admission control sheds work before it costs a dispatcher or
 * a queue slot (`err 429 ... retry-after=<ms>`).
 *
 * Graceful lifecycle: beginDrain() closes the listener and lets every
 * connection finish its in-flight and already-queued requests -- an
 * acknowledged write is never dropped -- while refusing new lines with
 * err 503. drainAndStop() bounds that with a deadline, then drains the
 * service itself (flushing pending update batches) and joins all
 * threads. dgserve wires SIGTERM/SIGINT to exactly this path.
 */

#ifndef DEPGRAPH_NET_SERVER_HH
#define DEPGRAPH_NET_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/admission.hh"
#include "net/connection.hh"
#include "net/event_loop.hh"
#include "obs/metrics.hh"
#include "service/protocol.hh"

namespace depgraph::net
{

struct ServerOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0; ///< 0 = ephemeral (see Server::port())
    /** Threads executing protocol commands against the service. */
    unsigned dispatchers = 4;
    std::size_t maxConnections = 1024;
    std::size_t maxLineBytes = service::kMaxLineBytes;
    AdmissionOptions admission;
    /** Periodic loop tick: snapshot-store TTL sweep + gauge refresh. */
    std::chrono::milliseconds tickInterval{500};
};

class Server
{
  public:
    Server(service::GraphService &svc, ServerOptions opt = {});

    /** Stops hard if still running (prefer drainAndStop first). */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, start the loop + dispatcher threads.
     * @return false on bind/listen failure (see lastError()).
     */
    bool start();

    /** Actual bound port (resolves port 0 to the kernel's choice). */
    std::uint16_t port() const { return boundPort_; }

    std::string endpoint() const;

    const std::string &lastError() const { return error_; }

    bool
    running() const
    {
        return running_.load(std::memory_order_acquire);
    }

    /** Stop accepting; existing connections wind down (async). */
    void beginDrain();

    /**
     * Graceful shutdown with a deadline: beginDrain(), wait for every
     * connection to finish its accepted requests, force-close whatever
     * remains at the deadline, then drain the service (applying
     * pending update batches) and join all threads.
     * @return true when everything finished inside the deadline.
     */
    bool drainAndStop(std::chrono::milliseconds deadline);

    /** Immediate shutdown: close everything, join threads. */
    void stop();

    service::GraphService &service() { return svc_; }
    AdmissionController &admission() { return admission_; }
    const ServerOptions &options() const { return opt_; }

    std::uint64_t
    connectionsAccepted() const
    {
        return acceptedConns_.load(std::memory_order_relaxed);
    }

    std::size_t
    activeConnections() const
    {
        return activeConns_.load(std::memory_order_relaxed);
    }

    /* ---- internal interface for Connection (loop thread) ---- */

    EventLoop &loop() { return loop_; }

    /** Admission verdict for one protocol line (classifies the verb;
     * control verbs are never shed). */
    std::optional<std::chrono::milliseconds>
    admitLine(const std::string &line);

    /** Run a protocol line on a dispatcher; the reply comes back via
     * conn->completeRequest(). */
    void dispatchLine(std::shared_ptr<Connection> conn,
                      std::string line);

    /** Serve GET /metrics on a dispatcher (renders the registry). A
     * nonempty X-DG-Trace header traces the scrape under that id. */
    void dispatchMetrics(std::shared_ptr<Connection> conn,
                         bool keep_alive, bool head_only,
                         std::string trace_header = {});

    /** Serve GET /debug/slowlog (slow-query log as JSON lines). */
    void dispatchSlowlog(std::shared_ptr<Connection> conn,
                         bool keep_alive, bool head_only,
                         std::string trace_header = {});

    void onConnectionClosed(Connection &conn);

    void noteBytesRead(std::size_t n);
    void noteBytesWritten(std::size_t n);
    void noteOversized();
    void noteHttpRequest();

  private:
    void acceptReady();
    void onTick();
    void dispatcherLoop();
    void enqueueWork(std::function<void()> fn);
    void closeAllConnections();
    void notifyDrained();
    void joinThreads();

    service::GraphService &svc_;
    ServerOptions opt_;
    AdmissionController admission_;

    EventLoop loop_;
    std::thread loopThread_;
    int listenFd_ = -1;
    std::uint16_t boundPort_ = 0;
    std::string error_;
    std::atomic<bool> running_{false};
    std::atomic<bool> draining_{false};

    /** Loop-thread only. */
    std::unordered_map<int, std::shared_ptr<Connection>> conns_;

    std::atomic<std::size_t> activeConns_{0};
    std::atomic<std::uint64_t> acceptedConns_{0};

    std::mutex drainMu_;
    std::condition_variable drainCv_;

    std::vector<std::thread> dispatchers_;
    std::mutex workMu_;
    std::condition_variable workCv_;
    std::deque<std::function<void()>> work_;
    bool workStop_ = false;

    /* dg_net_* metric handles (process-global registry). */
    obs::Counter *mAccepted_;
    obs::Counter *mClosed_;
    obs::Counter *mRejectedConns_;
    obs::Gauge *mActive_;
    obs::Counter *mBytesIn_;
    obs::Counter *mBytesOut_;
    obs::Counter *mLineRequests_;
    obs::Counter *mHttpRequests_;
    obs::Counter *mErrReplies_;
    obs::Counter *mShed_;
    obs::Counter *mOversized_;
    obs::Histogram *mRequestUs_;
};

} // namespace depgraph::net

#endif // DEPGRAPH_NET_SERVER_HH
