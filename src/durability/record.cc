#include "durability/record.hh"

#include <algorithm>

namespace depgraph::durability
{

namespace
{

void
header(ByteWriter &w, RecordType t, const std::string &graph)
{
    w.pod(static_cast<std::uint8_t>(t));
    w.str(graph);
}

} // namespace

std::vector<std::uint8_t>
encodeCreate(const std::string &graph, const graph::Graph &g)
{
    ByteWriter w;
    header(w, RecordType::Create, graph);
    w.vec(g.offsets());
    w.vec(g.targets());
    w.vec(g.weights());
    return std::move(w.buffer());
}

std::vector<std::uint8_t>
encodeMutate(const std::string &graph,
             const std::vector<gas::EdgeInsertion> &ins,
             const std::vector<gas::EdgeDeletion> &dels)
{
    ByteWriter w;
    header(w, RecordType::Mutate, graph);
    w.pod(static_cast<std::uint64_t>(ins.size()));
    for (const auto &e : ins) {
        w.pod(e.src);
        w.pod(e.dst);
        w.pod(e.weight);
    }
    w.pod(static_cast<std::uint64_t>(dels.size()));
    for (const auto &e : dels) {
        w.pod(e.src);
        w.pod(e.dst);
        w.pod(e.weight);
    }
    return std::move(w.buffer());
}

std::vector<std::uint8_t>
encodeMarker(const std::string &graph)
{
    ByteWriter w;
    header(w, RecordType::Marker, graph);
    return std::move(w.buffer());
}

bool
decodeRecord(const std::uint8_t *data, std::size_t n, Record &out)
{
    ByteReader r(data, n);
    std::uint8_t type = 0;
    if (!r.pod(type) || !r.str(out.graph))
        return false;

    switch (type) {
      case static_cast<std::uint8_t>(RecordType::Create): {
        out.type = RecordType::Create;
        std::vector<EdgeId> offsets;
        std::vector<VertexId> targets;
        std::vector<Value> weights;
        if (!r.vec(offsets) || !r.vec(targets) || !r.vec(weights)
            || !r.exhausted())
            return false;
        // Graph's ctor asserts CSR invariants fatally; re-check them
        // here so a corrupt-but-CRC-colliding record is rejected, not
        // a process abort.
        if (offsets.empty() || offsets.front() != 0
            || offsets.back() != targets.size()
            || (!weights.empty() && weights.size() != targets.size()))
            return false;
        for (std::size_t i = 1; i < offsets.size(); ++i)
            if (offsets[i] < offsets[i - 1])
                return false;
        for (const auto t : targets)
            if (t >= offsets.size() - 1)
                return false;
        out.created = graph::Graph(std::move(offsets),
                                   std::move(targets),
                                   std::move(weights));
        return true;
      }
      case static_cast<std::uint8_t>(RecordType::Mutate): {
        out.type = RecordType::Mutate;
        std::uint64_t count = 0;
        if (!r.pod(count))
            return false;
        out.ins.clear();
        out.ins.reserve(std::min<std::uint64_t>(count, 1u << 20));
        for (std::uint64_t i = 0; i < count; ++i) {
            gas::EdgeInsertion e;
            if (!r.pod(e.src) || !r.pod(e.dst) || !r.pod(e.weight))
                return false;
            out.ins.push_back(e);
        }
        if (!r.pod(count))
            return false;
        out.dels.clear();
        out.dels.reserve(std::min<std::uint64_t>(count, 1u << 20));
        for (std::uint64_t i = 0; i < count; ++i) {
            gas::EdgeDeletion e;
            if (!r.pod(e.src) || !r.pod(e.dst) || !r.pod(e.weight))
                return false;
            out.dels.push_back(e);
        }
        return r.exhausted();
      }
      case static_cast<std::uint8_t>(RecordType::Marker):
        out.type = RecordType::Marker;
        return r.exhausted();
      default:
        return false;
    }
}

} // namespace depgraph::durability
