#include "durability/wal.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/crc32.hh"
#include "common/failpoint.hh"
#include "obs/metrics.hh"

namespace depgraph::durability
{

namespace
{

std::string
errnoString(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

void
setErr(std::string *err, std::string msg)
{
    if (err)
        *err = std::move(msg);
}

} // namespace

bool
parseSyncPolicy(const std::string &s, SyncPolicy &out)
{
    if (s == "always")
        out = SyncPolicy::Always;
    else if (s == "batch")
        out = SyncPolicy::Batch;
    else if (s == "off")
        out = SyncPolicy::Off;
    else
        return false;
    return true;
}

const char *
syncPolicyName(SyncPolicy p)
{
    switch (p) {
      case SyncPolicy::Always:
        return "always";
      case SyncPolicy::Batch:
        return "batch";
      case SyncPolicy::Off:
        return "off";
    }
    return "?";
}

WalFile::~WalFile()
{
    close();
}

bool
WalFile::open(const std::string &path, std::string *err)
{
    std::lock_guard lk(mu_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        setErr(err, errnoString(("open " + path).c_str()));
        return false;
    }
    path_ = path;
    return true;
}

bool
WalFile::append(const std::vector<std::uint8_t> &payload, bool syncNow,
                std::string *err)
{
    if (payload.size() > kMaxRecordBytes) {
        setErr(err, "wal record too large");
        return false;
    }
    if (dg_failpoint("wal.append")) {
        setErr(err, "injected wal.append failure");
        return false;
    }

    const auto len = static_cast<std::uint32_t>(payload.size());
    const std::uint32_t crc = crc32(payload.data(), payload.size());
    std::vector<std::uint8_t> frame(8 + payload.size());
    std::memcpy(frame.data(), &len, 4);
    std::memcpy(frame.data() + 4, &crc, 4);
    std::memcpy(frame.data() + 8, payload.data(), payload.size());

    std::lock_guard lk(mu_);
    if (fd_ < 0) {
        setErr(err, "wal not open");
        return false;
    }
    std::size_t off = 0;
    while (off < frame.size()) {
        const auto n =
            ::write(fd_, frame.data() + off, frame.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setErr(err, errnoString("wal write"));
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    appended_ += frame.size();

    auto &reg = obs::registry();
    reg.counter("dg_wal_records_total", "WAL records appended").inc();
    reg.counter("dg_wal_bytes_total", "WAL bytes appended")
        .inc(frame.size());

    // The record is in the file (or at least the page cache); an
    // exit() armed here models a crash after write, before fsync/ack.
    if (dg_failpoint("wal.after_append")) {
        setErr(err, "injected wal.after_append failure");
        return false;
    }

    if (syncNow) {
        if (::fsync(fd_) != 0) {
            setErr(err, errnoString("wal fsync"));
            return false;
        }
        reg.counter("dg_wal_syncs_total", "WAL fsync calls").inc();
    }
    return true;
}

bool
WalFile::sync(std::string *err)
{
    std::lock_guard lk(mu_);
    if (fd_ < 0)
        return true; // nothing appended, nothing to sync
    if (::fsync(fd_) != 0) {
        setErr(err, errnoString("wal fsync"));
        return false;
    }
    obs::registry()
        .counter("dg_wal_syncs_total", "WAL fsync calls")
        .inc();
    return true;
}

bool
WalFile::truncate(std::string *err)
{
    std::lock_guard lk(mu_);
    if (fd_ < 0)
        return true;
    if (::ftruncate(fd_, 0) != 0) {
        setErr(err, errnoString("wal ftruncate"));
        return false;
    }
    if (::fsync(fd_) != 0) {
        setErr(err, errnoString("wal fsync"));
        return false;
    }
    appended_ = 0;
    return true;
}

void
WalFile::close()
{
    std::lock_guard lk(mu_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

std::uint64_t
WalFile::appendedBytes() const
{
    std::lock_guard lk(mu_);
    return appended_;
}

bool
WalFile::readAll(const std::string &path, ReadResult &out,
                 std::string *err)
{
    out = ReadResult{};
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        if (::access(path.c_str(), F_OK) != 0)
            return true; // no journal yet: empty history
        setErr(err, "open " + path + " for read failed");
        return false;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad()) {
        setErr(err, "read " + path + " failed");
        return false;
    }

    std::size_t pos = 0;
    while (pos + 8 <= bytes.size()) {
        std::uint32_t len = 0, crc = 0;
        std::memcpy(&len, bytes.data() + pos, 4);
        std::memcpy(&crc, bytes.data() + pos + 4, 4);
        if (len > kMaxRecordBytes || pos + 8 + len > bytes.size())
            break; // torn length word or payload ran past EOF
        if (crc32(bytes.data() + pos + 8, len) != crc)
            break; // torn/corrupt payload
        out.payloads.emplace_back(bytes.begin()
                                      + static_cast<long>(pos + 8),
                                  bytes.begin()
                                      + static_cast<long>(pos + 8
                                                          + len));
        pos += 8 + len;
    }
    out.validBytes = pos;
    out.tornTail = pos < bytes.size();
    return true;
}

bool
WalFile::repair(const std::string &path, std::uint64_t validBytes,
                std::string *err)
{
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0) {
        setErr(err, errnoString(("open " + path).c_str()));
        return false;
    }
    bool ok = ::ftruncate(fd, static_cast<off_t>(validBytes)) == 0
        && ::fsync(fd) == 0;
    if (!ok)
        setErr(err, errnoString("wal repair truncate"));
    ::close(fd);
    return ok;
}

} // namespace depgraph::durability
