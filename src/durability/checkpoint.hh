/**
 * @file
 * Checkpoint files: one whole-graph snapshot (CSR + converged fixpoint
 * caches) published with the classic atomic-rename dance.
 *
 * Layout of `<name>.ckpt`:
 *
 *   magic "DGCKPT01" | u64 payload_len | u32 crc32(payload) | payload
 *
 * with the payload carrying graph name, store version, the three CSR
 * arrays, and each cached per-algorithm fixpoint vector. Writing goes
 * to `<name>.ckpt.tmp`, fsyncs, renames over the final path, then
 * fsyncs the directory -- so a crash at ANY instruction leaves either
 * the old complete checkpoint or the new complete checkpoint, never a
 * hybrid. read validates magic, length and CRC and fails soft (the
 * recovery path falls back to WAL-only replay).
 *
 * Failpoints: "ckpt.publish" fires before the rename (an error aborts
 * leaving the old file; an exit models a crash with only the tmp file
 * written) and "ckpt.published" fires right after the rename, before
 * the caller gets to truncate the WAL.
 */

#ifndef DEPGRAPH_DURABILITY_CHECKPOINT_HH
#define DEPGRAPH_DURABILITY_CHECKPOINT_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "graph/csr.hh"

namespace depgraph::durability
{

/** What a checkpoint stores / recovery yields for one graph. */
struct CheckpointData
{
    std::string name;
    std::uint64_t version = 0;
    std::shared_ptr<const graph::Graph> graph;
    /** Per-algorithm converged states valid at exactly `version`. */
    std::vector<
        std::pair<std::string,
                  std::shared_ptr<const std::vector<Value>>>>
        fixpoints;
};

/** Atomically (re)write the checkpoint at `path`. */
bool writeCheckpoint(const std::string &path,
                     const CheckpointData &data, std::string *err);

/** @return false when missing, truncated, or corrupt (err says why). */
bool readCheckpoint(const std::string &path, CheckpointData &out,
                    std::string *err);

} // namespace depgraph::durability

#endif // DEPGRAPH_DURABILITY_CHECKPOINT_HH
