#include "durability/manager.hh"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <set>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace depgraph::durability
{

namespace
{

void
setErr(std::string *err, std::string msg)
{
    if (err)
        *err = std::move(msg);
}

bool
makeDir(const std::string &path, std::string *err)
{
    if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST)
        return true;
    setErr(err,
           "mkdir " + path + ": " + std::string(std::strerror(errno)));
    return false;
}

int
hexValue(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

Manager::Manager(DurabilityOptions opt) : opt_(std::move(opt)) {}

Manager::~Manager() = default;

std::string
Manager::escapeName(const std::string &name)
{
    static const char *hex = "0123456789abcdef";
    std::string out;
    out.reserve(name.size());
    for (const unsigned char c : name) {
        if ((c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')
            || (c >= '0' && c <= '9') || c == '_' || c == '-') {
            out.push_back(static_cast<char>(c));
        } else {
            out.push_back('%');
            out.push_back(hex[c >> 4]);
            out.push_back(hex[c & 0xF]);
        }
    }
    return out;
}

std::string
Manager::unescapeName(const std::string &stem)
{
    std::string out;
    out.reserve(stem.size());
    for (std::size_t i = 0; i < stem.size(); ++i) {
        if (stem[i] == '%' && i + 2 < stem.size()
            && hexValue(stem[i + 1]) >= 0
            && hexValue(stem[i + 2]) >= 0) {
            out.push_back(static_cast<char>(
                hexValue(stem[i + 1]) * 16 + hexValue(stem[i + 2])));
            i += 2;
        } else {
            out.push_back(stem[i]);
        }
    }
    return out;
}

std::string
Manager::walPath(const std::string &graph) const
{
    return opt_.dataDir + "/wal/" + escapeName(graph) + ".wal";
}

std::string
Manager::ckptPath(const std::string &graph) const
{
    return opt_.dataDir + "/ckpt/" + escapeName(graph) + ".ckpt";
}

bool
Manager::start(std::string *err)
{
    if (!enabled())
        return true;
    return makeDir(opt_.dataDir, err)
        && makeDir(opt_.dataDir + "/wal", err)
        && makeDir(opt_.dataDir + "/ckpt", err);
}

void
Manager::setHooks(FlushFn flush, PendingFn pending, SnapshotFn snap)
{
    flush_ = std::move(flush);
    pending_ = std::move(pending);
    snapshot_ = std::move(snap);
}

std::shared_ptr<Manager::PerGraph>
Manager::state(const std::string &graph)
{
    std::lock_guard lk(mu_);
    auto &slot = map_[graph];
    if (!slot)
        slot = std::make_shared<PerGraph>();
    return slot;
}

bool
Manager::ensureWalOpen(PerGraph &pg, const std::string &graph,
                       std::string *err)
{
    if (pg.wal.isOpen())
        return true;
    return pg.wal.open(walPath(graph), err);
}

bool
Manager::logCreate(const std::string &graph, const graph::Graph &g,
                   const std::function<void()> &applyWhileLocked,
                   std::string *err)
{
    if (!enabled()) {
        applyWhileLocked();
        return true;
    }
    auto pg = state(graph);
    std::lock_guard lk(pg->ackMu);
    if (!frozen_.load(std::memory_order_acquire)) {
        if (!ensureWalOpen(*pg, graph, err)
            || !pg->wal.append(encodeCreate(graph, g),
                               opt_.sync == SyncPolicy::Always, err))
            return false;
    }
    applyWhileLocked();
    return true;
}

bool
Manager::logMutate(const std::string &graph,
                   const std::vector<gas::EdgeInsertion> &ins,
                   const std::vector<gas::EdgeDeletion> &dels,
                   const std::function<void()> &applyWhileLocked,
                   std::string *err)
{
    if (!enabled()) {
        applyWhileLocked();
        return true;
    }
    auto pg = state(graph);
    std::lock_guard lk(pg->ackMu);
    if (!frozen_.load(std::memory_order_acquire)) {
        if (!ensureWalOpen(*pg, graph, err)
            || !pg->wal.append(encodeMutate(graph, ins, dels),
                               opt_.sync == SyncPolicy::Always, err))
            return false;
    }
    applyWhileLocked();
    return true;
}

void
Manager::groupCommit(const std::string &graph)
{
    if (!enabled() || frozen_.load(std::memory_order_acquire))
        return;
    auto pg = state(graph);
    // No ackMu here: an external checkpoint drives the batcher flush
    // that calls us while already holding it (see header).
    std::string err;
    if (!ensureWalOpen(*pg, graph, &err)
        || !pg->wal.append(encodeMarker(graph),
                           opt_.sync != SyncPolicy::Off, &err))
        dg_warn("wal group-commit for '", graph, "' failed: ", err);
}

void
Manager::noteApplied(const std::string &graph)
{
    if (!enabled() || frozen_.load(std::memory_order_acquire)
        || opt_.checkpointEveryBatches == 0)
        return;
    auto pg = state(graph);
    const auto batches =
        pg->batchesSinceCkpt.fetch_add(1, std::memory_order_relaxed)
        + 1;
    if (batches < opt_.checkpointEveryBatches)
        return;
    // Opportunistic: a busy ackMu (writer mid-ack, or a checkpoint
    // already running) or still-pending churn skips this round --
    // the counter keeps its value, so the next applied batch retries.
    std::unique_lock lk(pg->ackMu, std::try_to_lock);
    if (!lk.owns_lock())
        return;
    if (pending_ && pending_(graph) > 0)
        return;
    std::string err;
    if (!checkpointLocked(*pg, graph, /*flushFirst=*/false, &err))
        dg_warn("periodic checkpoint of '", graph, "' failed: ", err);
}

bool
Manager::checkpointNow(const std::string &graph, std::string *err)
{
    if (!enabled()) {
        setErr(err, "durability disabled (no --data_dir)");
        return false;
    }
    if (frozen_.load(std::memory_order_acquire)) {
        setErr(err, "durability frozen (simulated crash)");
        return false;
    }
    auto pg = state(graph);
    std::lock_guard lk(pg->ackMu);
    return checkpointLocked(*pg, graph, /*flushFirst=*/true, err);
}

bool
Manager::checkpointLocked(PerGraph &pg, const std::string &graph,
                          bool flushFirst, std::string *err)
{
    if (flushFirst && flush_)
        flush_(graph);
    if (!snapshot_) {
        setErr(err, "no snapshot hook installed");
        return false;
    }
    CheckpointData data;
    if (!snapshot_(graph, data)) {
        setErr(err, "unknown graph '" + graph + "'");
        return false;
    }
    if (!writeCheckpoint(ckptPath(graph), data, err))
        return false;
    if (!ensureWalOpen(pg, graph, err) || !pg.wal.truncate(err))
        return false;
    pg.batchesSinceCkpt.store(0, std::memory_order_relaxed);
    return true;
}

void
Manager::syncAll()
{
    if (!enabled() || frozen_.load(std::memory_order_acquire))
        return;
    std::vector<std::shared_ptr<PerGraph>> all;
    {
        std::lock_guard lk(mu_);
        all.reserve(map_.size());
        for (auto &[name, pg] : map_)
            all.push_back(pg);
    }
    for (auto &pg : all)
        if (pg->wal.isOpen())
            pg->wal.sync(nullptr);
}

void
Manager::simulateCrash()
{
    frozen_.store(true, std::memory_order_release);
}

RecoveryReport
Manager::recover(const ReplayHandlers &h, std::string *err)
{
    RecoveryReport report;
    if (!enabled())
        return report;

    namespace fs = std::filesystem;
    std::set<std::string> names;
    std::error_code ec;
    for (const char *sub : {"/wal", "/ckpt"}) {
        for (const auto &entry :
             fs::directory_iterator(opt_.dataDir + sub, ec)) {
            const auto p = entry.path();
            if (p.extension() == ".wal" || p.extension() == ".ckpt")
                names.insert(unescapeName(p.stem().string()));
        }
    }

    auto &reg = obs::registry();
    for (const auto &name : names) {
        bool haveBase = false;
        CheckpointData ckpt;
        const auto cp = ckptPath(name);
        if (fs::exists(cp, ec)) {
            std::string cerr2;
            if (readCheckpoint(cp, ckpt, &cerr2)) {
                haveBase = true;
                ++report.checkpointsLoaded;
            } else {
                ++report.corruptCheckpoints;
                dg_warn("checkpoint for '", name,
                        "' unusable, falling back to WAL: ", cerr2);
            }
        }

        WalFile::ReadResult rr;
        std::string werr;
        if (!WalFile::readAll(walPath(name), rr, &werr)) {
            dg_warn("wal for '", name, "' unreadable: ", werr);
            rr = WalFile::ReadResult{};
        }

        // Decode; a CRC-valid but semantically malformed frame is
        // treated exactly like a torn tail -- everything from it on
        // is amputated.
        std::vector<Record> records;
        std::uint64_t decodedBytes = 0;
        bool decodeTear = false;
        for (const auto &payload : rr.payloads) {
            Record rec;
            if (!decodeRecord(payload.data(), payload.size(), rec)) {
                decodeTear = true;
                break;
            }
            decodedBytes += 8 + payload.size();
            records.push_back(std::move(rec));
        }
        if (rr.tornTail || decodeTear) {
            const auto keep =
                decodeTear ? decodedBytes : rr.validBytes;
            std::string terr;
            if (WalFile::repair(walPath(name), keep, &terr))
                ++report.tornTailsTruncated;
            else
                dg_warn("wal tail repair for '", name,
                        "' failed: ", terr);
        }

        bool createSeen = false, mutationSeen = false;
        for (const auto &r : records) {
            createSeen |= r.type == RecordType::Create;
            mutationSeen |= r.type == RecordType::Mutate;
        }

        if (haveBase) {
            if (mutationSeen && !opt_.seedFixpointsOnReplay)
                ckpt.fixpoints.clear(); // exact mode: recompute
            if (h.onCheckpoint)
                h.onCheckpoint(std::move(ckpt));
        }
        for (auto &r : records) {
            switch (r.type) {
              case RecordType::Create:
                if (h.onCreate)
                    h.onCreate(name, std::move(r.created));
                ++report.walRecordsReplayed;
                break;
              case RecordType::Mutate:
                if (h.onMutate)
                    h.onMutate(name, std::move(r.ins),
                               std::move(r.dels));
                ++report.walRecordsReplayed;
                break;
              case RecordType::Marker:
                if (h.onMarker)
                    h.onMarker(name);
                ++report.walBatchesReplayed;
                break;
            }
        }
        if (h.onReplayDone)
            h.onReplayDone(name);

        const bool recovered = haveBase || createSeen;
        if (recovered)
            report.graphs.push_back(name);

        // Seal: fresh checkpoint of the recovered state, then an
        // empty journal -- the next crash replays from here.
        if (recovered
            && (!records.empty() || rr.tornTail || decodeTear)) {
            auto pg = state(name);
            std::lock_guard lk(pg->ackMu);
            std::string serr;
            if (!checkpointLocked(*pg, name, /*flushFirst=*/false,
                                  &serr))
                dg_warn("post-recovery checkpoint of '", name,
                        "' failed: ", serr);
        } else if (!recovered && !records.empty()) {
            // Mutations for a graph that never existed: drop them.
            std::string terr;
            WalFile::repair(walPath(name), 0, &terr);
        }
    }

    reg.counter("dg_recovery_runs_total", "recovery passes").inc();
    reg.counter("dg_recovery_records_total",
                "WAL records replayed by recovery")
        .inc(report.walRecordsReplayed);
    reg.counter("dg_recovery_torn_tails_total",
                "torn WAL tails amputated")
        .inc(report.tornTailsTruncated);
    setErr(err, "");
    return report;
}

} // namespace depgraph::durability
