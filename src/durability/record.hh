/**
 * @file
 * WAL record payloads and their byte codec.
 *
 * Three record types travel through a graph's journal:
 *
 *   Create (1)  graph (re)created -- name + full CSR arrays. Replay
 *               replaces any prior state of the name, exactly like a
 *               live `load` does.
 *   Mutate (2)  one acknowledged churn request -- name + insertions +
 *               deletions, in request order.
 *   Marker (3)  a group-commit boundary written when the UpdateBatcher
 *               flushed this graph. Replay flushes at markers so the
 *               recovered CSR sees the SAME batch boundaries the live
 *               process did -- deletion-cancels-pending-insert makes
 *               the final edge multiset batching-dependent in wildcard
 *               corner cases, so boundaries are part of the history.
 *
 * Encoding is length-prefixed little-endian-by-convention (memcpy of
 * host-order scalars; the WAL is machine-local, never shipped across
 * architectures). decode() never trusts lengths: every read is bounds-
 * checked and a malformed payload returns false instead of crashing,
 * because the tail of a journal after a power loss is attacker-grade
 * garbage.
 */

#ifndef DEPGRAPH_DURABILITY_RECORD_HH
#define DEPGRAPH_DURABILITY_RECORD_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "gas/incremental.hh"
#include "graph/csr.hh"

namespace depgraph::durability
{

enum class RecordType : std::uint8_t
{
    Create = 1,
    Mutate = 2,
    Marker = 3,
};

/** A decoded WAL record (union-style: fields valid per `type`). */
struct Record
{
    RecordType type = RecordType::Marker;
    std::string graph;

    /* Create */
    graph::Graph created;

    /* Mutate */
    std::vector<gas::EdgeInsertion> ins;
    std::vector<gas::EdgeDeletion> dels;
};

std::vector<std::uint8_t> encodeCreate(const std::string &graph,
                                       const graph::Graph &g);

std::vector<std::uint8_t>
encodeMutate(const std::string &graph,
             const std::vector<gas::EdgeInsertion> &ins,
             const std::vector<gas::EdgeDeletion> &dels);

std::vector<std::uint8_t> encodeMarker(const std::string &graph);

/** @return false on any malformed/truncated payload. */
bool decodeRecord(const std::uint8_t *data, std::size_t n,
                  Record &out);

/**
 * Low-level byte stream helpers, shared with the checkpoint codec.
 */
class ByteWriter
{
  public:
    std::vector<std::uint8_t> &buffer() { return buf_; }

    void
    bytes(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const std::uint8_t *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    template <typename T>
    void
    pod(T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        bytes(&v, sizeof v);
    }

    void
    str(const std::string &s)
    {
        pod(static_cast<std::uint64_t>(s.size()));
        bytes(s.data(), s.size());
    }

    template <typename T>
    void
    vec(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        pod(static_cast<std::uint64_t>(v.size()));
        bytes(v.data(), v.size() * sizeof(T));
    }

  private:
    std::vector<std::uint8_t> buf_;
};

class ByteReader
{
  public:
    ByteReader(const std::uint8_t *p, std::size_t n) : p_(p), n_(n) {}

    bool
    bytes(void *out, std::size_t n)
    {
        if (n > n_ - pos_)
            return false;
        std::memcpy(out, p_ + pos_, n);
        pos_ += n;
        return true;
    }

    template <typename T>
    bool
    pod(T &out)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        return bytes(&out, sizeof out);
    }

    bool
    str(std::string &out)
    {
        std::uint64_t len = 0;
        if (!pod(len) || len > n_ - pos_)
            return false;
        out.assign(reinterpret_cast<const char *>(p_ + pos_),
                   static_cast<std::size_t>(len));
        pos_ += static_cast<std::size_t>(len);
        return true;
    }

    template <typename T>
    bool
    vec(std::vector<T> &out)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        std::uint64_t len = 0;
        if (!pod(len) || len > (n_ - pos_) / sizeof(T))
            return false;
        out.resize(static_cast<std::size_t>(len));
        return bytes(out.data(),
                     static_cast<std::size_t>(len) * sizeof(T));
    }

    bool exhausted() const { return pos_ == n_; }

  private:
    const std::uint8_t *p_;
    std::size_t n_;
    std::size_t pos_ = 0;
};

} // namespace depgraph::durability

#endif // DEPGRAPH_DURABILITY_RECORD_HH
