/**
 * @file
 * WalFile: one append-only, CRC-framed journal file.
 *
 * Every record is framed as
 *
 *   [u32 payload_len][u32 crc32(payload)][payload bytes]
 *
 * so a reader can walk the file and stop at the first frame whose
 * length runs past EOF or whose CRC mismatches -- that is a torn tail
 * from a crash mid-write, and readAll() reports the byte offset of the
 * last GOOD frame so the caller can truncate the garbage away instead
 * of replaying it. A record that was never fully written was, under
 * --wal_sync=always, never acknowledged either, so truncation cannot
 * lose an acked write.
 *
 * Sync policy is the caller's business per append: pass syncNow=true
 * to fsync before returning (the `always` policy acks only durable
 * records), or batch syncs via sync() at group-commit boundaries.
 */

#ifndef DEPGRAPH_DURABILITY_WAL_HH
#define DEPGRAPH_DURABILITY_WAL_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace depgraph::durability
{

/** When does an appended record hit the platter? */
enum class SyncPolicy
{
    Always, ///< fsync before every ack: no acked write ever lost
    Batch,  ///< fsync at group-commit (batcher flush) boundaries
    Off,    ///< never fsync: page cache only, fastest, least durable
};

/** Parse "always" | "batch" | "off". @return false on anything else. */
bool parseSyncPolicy(const std::string &s, SyncPolicy &out);
const char *syncPolicyName(SyncPolicy p);

class WalFile
{
  public:
    /** Frames larger than this are rejected on write and treated as
     * tail corruption on read (a torn length word can claim 4 GiB). */
    static constexpr std::uint32_t kMaxRecordBytes = 1u << 30;

    WalFile() = default;
    ~WalFile();

    WalFile(const WalFile &) = delete;
    WalFile &operator=(const WalFile &) = delete;

    /** Open (creating if absent) for appending. */
    bool open(const std::string &path, std::string *err);

    bool isOpen() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

    /**
     * Frame and append one record; fsync before returning when
     * `syncNow`. Failpoints: "wal.append" (before the write; an armed
     * error fails the append with nothing written) and
     * "wal.after_append" (after the write, before any fsync -- the
     * canonical place to _exit() and leave a possibly-unsynced tail).
     */
    bool append(const std::vector<std::uint8_t> &payload, bool syncNow,
                std::string *err);

    /** fsync whatever has been appended so far. */
    bool sync(std::string *err);

    /** Drop every record: truncate to zero length. */
    bool truncate(std::string *err);

    void close();

    /** Bytes appended through this handle (not fstat; cheap). */
    std::uint64_t appendedBytes() const;

    struct ReadResult
    {
        std::vector<std::vector<std::uint8_t>> payloads;
        /** Offset one past the last intact frame. */
        std::uint64_t validBytes = 0;
        /** True when garbage followed validBytes (torn tail). */
        bool tornTail = false;
    };

    /**
     * Read every intact frame of `path`. A missing file is success
     * with zero records. @return false only on I/O errors (open/read
     * failed) -- corruption is not an error, it is a tornTail report.
     */
    static bool readAll(const std::string &path, ReadResult &out,
                        std::string *err);

    /** Truncate `path` to `validBytes`, amputating a torn tail. */
    static bool repair(const std::string &path,
                       std::uint64_t validBytes, std::string *err);

  private:
    mutable std::mutex mu_; ///< serializes fd writes and fsyncs
    std::string path_;
    int fd_ = -1;
    std::uint64_t appended_ = 0;
};

} // namespace depgraph::durability

#endif // DEPGRAPH_DURABILITY_WAL_HH
