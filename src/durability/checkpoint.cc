#include "durability/checkpoint.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/crc32.hh"
#include "common/failpoint.hh"
#include "durability/record.hh"
#include "obs/metrics.hh"

namespace depgraph::durability
{

namespace
{

constexpr char kMagic[8] = {'D', 'G', 'C', 'K', 'P', 'T', '0', '1'};

void
setErr(std::string *err, std::string msg)
{
    if (err)
        *err = std::move(msg);
}

std::string
errnoString(const std::string &what)
{
    return what + ": " + std::strerror(errno);
}

bool
fsyncPath(const std::string &path, bool directory, std::string *err)
{
    const int fd =
        ::open(path.c_str(), directory ? O_RDONLY | O_DIRECTORY
                                       : O_RDONLY);
    if (fd < 0) {
        setErr(err, errnoString("open " + path));
        return false;
    }
    const bool ok = ::fsync(fd) == 0;
    if (!ok)
        setErr(err, errnoString("fsync " + path));
    ::close(fd);
    return ok;
}

} // namespace

bool
writeCheckpoint(const std::string &path, const CheckpointData &data,
                std::string *err)
{
    if (!data.graph) {
        setErr(err, "checkpoint without a graph");
        return false;
    }

    ByteWriter w;
    w.str(data.name);
    w.pod(data.version);
    w.vec(data.graph->offsets());
    w.vec(data.graph->targets());
    w.vec(data.graph->weights());
    w.pod(static_cast<std::uint64_t>(data.fixpoints.size()));
    for (const auto &[algo, states] : data.fixpoints) {
        w.str(algo);
        if (states)
            w.vec(*states);
        else
            w.pod(static_cast<std::uint64_t>(0));
    }
    const auto &payload = w.buffer();

    const std::string tmp = path + ".tmp";
    {
        const int fd = ::open(tmp.c_str(),
                              O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd < 0) {
            setErr(err, errnoString("open " + tmp));
            return false;
        }
        const auto len = static_cast<std::uint64_t>(payload.size());
        const std::uint32_t crc =
            crc32(payload.data(), payload.size());
        std::vector<std::uint8_t> head(sizeof kMagic + 12);
        std::memcpy(head.data(), kMagic, sizeof kMagic);
        std::memcpy(head.data() + 8, &len, 8);
        std::memcpy(head.data() + 16, &crc, 4);

        bool ok = true;
        auto writeAll = [&](const std::uint8_t *p, std::size_t n) {
            std::size_t off = 0;
            while (off < n) {
                const auto w2 = ::write(fd, p + off, n - off);
                if (w2 < 0) {
                    if (errno == EINTR)
                        continue;
                    return false;
                }
                off += static_cast<std::size_t>(w2);
            }
            return true;
        };
        ok = writeAll(head.data(), head.size())
            && writeAll(payload.data(), payload.size())
            && ::fsync(fd) == 0;
        ::close(fd);
        if (!ok) {
            setErr(err, errnoString("write " + tmp));
            std::remove(tmp.c_str());
            return false;
        }
    }

    // The tmp file is complete and durable; the rename is the commit.
    if (dg_failpoint("ckpt.publish")) {
        setErr(err, "injected ckpt.publish failure");
        std::remove(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        setErr(err, errnoString("rename " + tmp));
        std::remove(tmp.c_str());
        return false;
    }
    const auto slash = path.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    if (!fsyncPath(dir, true, err))
        return false;

    auto &reg = obs::registry();
    reg.counter("dg_ckpt_writes_total", "checkpoints published")
        .inc();
    reg.counter("dg_ckpt_bytes_total", "checkpoint payload bytes")
        .inc(payload.size());

    if (dg_failpoint("ckpt.published")) {
        setErr(err, "injected ckpt.published failure");
        return false;
    }
    return true;
}

bool
readCheckpoint(const std::string &path, CheckpointData &out,
               std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        setErr(err, "open " + path + " failed");
        return false;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad() || bytes.size() < sizeof kMagic + 12) {
        setErr(err, path + ": short or unreadable");
        return false;
    }
    if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
        setErr(err, path + ": bad magic");
        return false;
    }
    std::uint64_t len = 0;
    std::uint32_t crc = 0;
    std::memcpy(&len, bytes.data() + 8, 8);
    std::memcpy(&crc, bytes.data() + 16, 4);
    if (len != bytes.size() - sizeof kMagic - 12) {
        setErr(err, path + ": length mismatch (truncated?)");
        return false;
    }
    const std::uint8_t *payload = bytes.data() + sizeof kMagic + 12;
    if (crc32(payload, static_cast<std::size_t>(len)) != crc) {
        setErr(err, path + ": CRC mismatch");
        return false;
    }

    ByteReader r(payload, static_cast<std::size_t>(len));
    std::vector<EdgeId> offsets;
    std::vector<VertexId> targets;
    std::vector<Value> weights;
    std::uint64_t fixpointCount = 0;
    if (!r.str(out.name) || !r.pod(out.version) || !r.vec(offsets)
        || !r.vec(targets) || !r.vec(weights)
        || !r.pod(fixpointCount)) {
        setErr(err, path + ": malformed payload");
        return false;
    }
    if (offsets.empty() || offsets.front() != 0
        || offsets.back() != targets.size()
        || (!weights.empty() && weights.size() != targets.size())) {
        setErr(err, path + ": inconsistent CSR");
        return false;
    }
    out.graph = std::make_shared<graph::Graph>(
        std::move(offsets), std::move(targets), std::move(weights));
    out.fixpoints.clear();
    for (std::uint64_t i = 0; i < fixpointCount; ++i) {
        std::string algo;
        std::vector<Value> states;
        if (!r.str(algo) || !r.vec(states)) {
            setErr(err, path + ": malformed fixpoint entry");
            return false;
        }
        out.fixpoints.emplace_back(
            std::move(algo), std::make_shared<const std::vector<Value>>(
                                 std::move(states)));
    }
    if (!r.exhausted()) {
        setErr(err, path + ": trailing bytes");
        return false;
    }
    return true;
}

} // namespace depgraph::durability
