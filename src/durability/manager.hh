/**
 * @file
 * durability::Manager -- the policy layer tying WAL + checkpoints to
 * the serving engine.
 *
 * Layout under --data_dir:
 *
 *   <data_dir>/wal/<escaped-name>.wal    per-graph journal
 *   <data_dir>/ckpt/<escaped-name>.ckpt  per-graph checkpoint
 *
 * (graph names come from untrusted clients; anything outside
 * [A-Za-z0-9_-] is percent-escaped so "../../etc" cannot leave the
 * data dir).
 *
 * Ack protocol. Each graph has an ackMu; logCreate()/logMutate() hold
 * it across {WAL append, apply-to-engine callback} so a record is
 * either durable AND applied or neither -- and so a concurrent
 * checkpoint (which holds the same ackMu across {flush, snapshot
 * write, WAL truncate}) can never truncate a record whose mutation was
 * acked but not yet enqueued. groupCommit() deliberately does NOT take
 * ackMu: it is called from inside the batcher flush, which an external
 * checkpoint drives while already holding ackMu.
 *
 * Periodic checkpoints (checkpointEveryBatches > 0) trigger from
 * noteApplied() with try_lock -- if the ackMu is busy (a writer or
 * another checkpoint) or churn is still pending, this round is simply
 * skipped; durability never blocks the serving path for a snapshot.
 *
 * Recovery (recover()) walks both directories, loads the newest valid
 * checkpoint per graph, replays the WAL suffix through caller-provided
 * handlers (create / mutate / marker-flush), amputates torn tails, and
 * finishes by re-checkpointing + truncating every journal it replayed.
 * With seedFixpointsOnReplay=false (the default, "exact" mode) a
 * checkpoint's fixpoint caches are DROPPED when the WAL holds
 * mutations for that graph: replay then applies churn to the CSR
 * without an incremental pass and the first query recomputes from
 * scratch -- making recovered query results bitwise equal to a
 * scratch recompute. "fast" mode keeps the caches and reconverges
 * incrementally (epsilon-equal, much cheaper for big graphs).
 */

#ifndef DEPGRAPH_DURABILITY_MANAGER_HH
#define DEPGRAPH_DURABILITY_MANAGER_HH

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "durability/checkpoint.hh"
#include "durability/record.hh"
#include "durability/wal.hh"

namespace depgraph::durability
{

struct DurabilityOptions
{
    /** Root directory; empty disables durability entirely. */
    std::string dataDir;
    SyncPolicy sync = SyncPolicy::Batch;
    /** Checkpoint a graph after this many applied batches (0 = only
     * explicit `checkpoint` verb / recovery-end checkpoints). */
    std::size_t checkpointEveryBatches = 0;
    /** false = "exact" recovery (scratch recompute, bitwise-equal
     * queries); true = "fast" (seed checkpoint fixpoints, incremental
     * reconvergence, epsilon-equal). */
    bool seedFixpointsOnReplay = false;
};

struct RecoveryReport
{
    std::vector<std::string> graphs; ///< names recovered
    std::size_t checkpointsLoaded = 0;
    std::size_t corruptCheckpoints = 0;
    std::size_t walRecordsReplayed = 0;
    std::size_t walBatchesReplayed = 0; ///< marker-bounded flushes
    std::size_t tornTailsTruncated = 0;
};

class Manager
{
  public:
    /** Flush the batcher for one graph (checkpoint prologue). */
    using FlushFn = std::function<void(const std::string &)>;
    /** Pending churn edges for one graph (checkpoint gating). */
    using PendingFn = std::function<std::size_t(const std::string &)>;
    /** Fill CheckpointData from the current snapshot; false when the
     * graph vanished. */
    using SnapshotFn =
        std::function<bool(const std::string &, CheckpointData &)>;

    explicit Manager(DurabilityOptions opt = {});
    ~Manager();

    Manager(const Manager &) = delete;
    Manager &operator=(const Manager &) = delete;

    bool enabled() const { return !opt_.dataDir.empty(); }
    const DurabilityOptions &options() const { return opt_; }

    /** Create the directory layout. Call once before anything else. */
    bool start(std::string *err);

    void setHooks(FlushFn flush, PendingFn pending, SnapshotFn snap);

    /**
     * Journal a graph (re)creation, then run `applyWhileLocked` (the
     * store put) under the graph's ackMu. @return false with nothing
     * applied when the record could not be made durable.
     */
    bool logCreate(const std::string &graph, const graph::Graph &g,
                   const std::function<void()> &applyWhileLocked,
                   std::string *err);

    /** Journal an acknowledged churn request, then run the enqueue
     * callback under ackMu. Same all-or-nothing contract. */
    bool logMutate(const std::string &graph,
                   const std::vector<gas::EdgeInsertion> &ins,
                   const std::vector<gas::EdgeDeletion> &dels,
                   const std::function<void()> &applyWhileLocked,
                   std::string *err);

    /**
     * Group-commit boundary: append a Marker record and (under the
     * `batch` policy) fsync everything journaled since the last one.
     * Called by the UpdateBatcher at the top of a flush, after the
     * pending churn is claimed. Never takes ackMu (see file comment).
     */
    void groupCommit(const std::string &graph);

    /** A batch was applied+published; drives periodic checkpoints. */
    void noteApplied(const std::string &graph);

    /** Explicit checkpoint: flush, snapshot, publish, truncate WAL. */
    bool checkpointNow(const std::string &graph, std::string *err);

    /** fsync every open journal (graceful drain/shutdown). */
    void syncAll();

    /**
     * TESTS ONLY: freeze all disk I/O from this instant. Everything
     * already on disk stays; nothing further is written, synced or
     * truncated -- so tearing the process down gracefully afterwards
     * leaves the files exactly as a SIGKILL here would have.
     */
    void simulateCrash();

    struct ReplayHandlers
    {
        /** Seed a recovered graph from its checkpoint. */
        std::function<void(CheckpointData &&)> onCheckpoint;
        /** WAL Create: (re)place the named graph. */
        std::function<void(const std::string &, graph::Graph &&)>
            onCreate;
        /** WAL Mutate: enqueue churn (do NOT re-journal it). */
        std::function<void(const std::string &,
                           std::vector<gas::EdgeInsertion> &&,
                           std::vector<gas::EdgeDeletion> &&)>
            onMutate;
        /** WAL Marker: flush the batcher for the graph. */
        std::function<void(const std::string &)> onMarker;
        /** All records delivered for the graph; flush leftovers. */
        std::function<void(const std::string &)> onReplayDone;
    };

    /** Replay persisted state through `h`. Call before serving. */
    RecoveryReport recover(const ReplayHandlers &h, std::string *err);

    /** Escape a client graph name into a safe file stem. */
    static std::string escapeName(const std::string &name);
    static std::string unescapeName(const std::string &stem);

    std::string walPath(const std::string &graph) const;
    std::string ckptPath(const std::string &graph) const;

  private:
    struct PerGraph
    {
        std::mutex ackMu;
        WalFile wal;
        std::atomic<std::size_t> batchesSinceCkpt{0};
    };

    std::shared_ptr<PerGraph> state(const std::string &graph);
    bool ensureWalOpen(PerGraph &pg, const std::string &graph,
                       std::string *err);
    /** Caller holds pg.ackMu. */
    bool checkpointLocked(PerGraph &pg, const std::string &graph,
                          bool flushFirst, std::string *err);

    DurabilityOptions opt_;
    FlushFn flush_;
    PendingFn pending_;
    SnapshotFn snapshot_;
    std::atomic<bool> frozen_{false};

    mutable std::mutex mu_; ///< guards map_
    std::map<std::string, std::shared_ptr<PerGraph>> map_;
};

} // namespace depgraph::durability

#endif // DEPGRAPH_DURABILITY_MANAGER_HH
