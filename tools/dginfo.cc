/**
 * @file
 * dginfo — structural report for a graph: size, degree statistics,
 * diameter estimate, skew, clustering, k-core spectrum, and the
 * hub/core-path structure DepGraph would build (for the given lambda
 * and core count).
 *
 * Examples:
 *   dginfo --dataset AZ
 *   dginfo --graph my_edges.txt --lambda 0.01 --cores 16
 */

#include <cstdio>

#include "common/options.hh"
#include "common/table.hh"
#include "graph/analytics.hh"
#include "graph/core_paths.hh"
#include "graph/datasets.hh"
#include "graph/degree.hh"
#include "graph/edge_list.hh"
#include "graph/generators.hh"
#include "graph/partition.hh"

using namespace depgraph;
using namespace depgraph::graph;

int
main(int argc, char **argv)
{
    Options o;
    o.declare("graph", "", "text edge list path");
    o.declare("binary", "", "binary graph path");
    o.declare("dataset", "", "Table III stand-in name (GL..FS)");
    o.declare("dscale", "0.2", "dataset scale factor");
    o.declare("lambda", "0.005", "hub fraction for structure report");
    o.declare("cores", "16", "partitions for the core-path report");
    o.declare("triangles", "0", "also count triangles (slower)");
    o.parse(argc, argv);

    Graph g = [&]() -> Graph {
        if (!o.getString("graph").empty())
            return loadEdgeListText(o.getString("graph"));
        if (!o.getString("binary").empty())
            return loadBinary(o.getString("binary"));
        if (!o.getString("dataset").empty())
            return makeDataset(o.getString("dataset"),
                               o.getDouble("dscale"));
        dg_fatal("no graph source given (try --help)");
    }();

    const auto s = degreeStats(g);
    Table t({"property", "value"});
    t.addRow({"vertices", Table::fmt(std::uint64_t{g.numVertices()})});
    t.addRow({"edges", Table::fmt(g.numEdges())});
    t.addRow({"weighted", g.weighted() ? "yes" : "no"});
    t.addRow({"avg out-degree", Table::fmt(s.avgOutDegree, 2)});
    t.addRow({"max out-degree", Table::fmt(s.maxOutDegree)});
    t.addRow({"median out-degree", Table::fmt(s.medianOutDegree)});
    t.addRow({"top-1% edge share", Table::fmt(s.top1PctEdgeShare, 3)});
    t.addRow({"diameter (est.)",
              Table::fmt(std::uint64_t{estimateDiameter(g, 8)})});
    t.addRow({"avg path length (est.)",
              Table::fmt(averagePathLength(g, 4), 2)});
    t.addRow({"degeneracy (max k-core)",
              Table::fmt(std::uint64_t{degeneracy(g)})});
    if (o.getBool("triangles")) {
        t.addRow({"triangles", Table::fmt(countTriangles(g))});
        t.addRow({"global clustering",
                  Table::fmt(globalClusteringCoefficient(g), 4)});
    }

    HubParams hp;
    hp.lambda = o.getDouble("lambda");
    const HubSet hubs(g, hp);
    const Partitioning part(
        g, static_cast<unsigned>(o.getInt("cores")));
    const CoreSubgraph cs(g, hubs, 64, &part);
    std::size_t cross = 0, total_len = 0;
    for (const auto &p : cs.paths()) {
        total_len += p.length();
        if (part.ownerOf(p.head) != part.ownerOf(p.tail))
            ++cross;
    }
    t.addRow({"hub vertices", Table::fmt(
        std::uint64_t{hubs.numHubs()})});
    t.addRow({"hub degree threshold", Table::fmt(hubs.threshold())});
    t.addRow({"core vertices",
              Table::fmt(std::uint64_t{cs.numCoreVertices()})});
    t.addRow({"core-paths",
              Table::fmt(std::uint64_t{cs.paths().size()})});
    t.addRow({"  cross-partition", Table::fmt(std::uint64_t{cross})});
    t.addRow({"  mean length",
              Table::fmt(cs.paths().empty()
                             ? 0.0
                             : static_cast<double>(total_len)
                                 / static_cast<double>(
                                     cs.paths().size()),
                         2)});
    t.print();
    return 0;
}
