/**
 * @file
 * dgload — multi-connection load driver for dgserve --listen.
 *
 * Opens N concurrent TCP connections and drives a mixed
 * query/insert/delete workload against one server or a sharded fleet
 * (--shards routes each graph by the same consistent hash the servers
 * would use), measuring per-request latency client-side — the number
 * a user would see, queue wait and transport included.
 *
 * Replies are checked: anything other than "ok ..." counts as a
 * protocol error and fails the run (exit 1), except "err 429 ...
 * retry-after=<ms>" sheds, which are honored by backing off and
 * retrying — that is the admission-control contract, not an error.
 *
 * Results (count, mean, exact p50/p99, max per request type) print as
 * a table and optionally land in a BENCH_net.json artifact:
 *   dgload --port 7411 --connections 8 --requests 200 \
 *          --json BENCH_net.json
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "common/options.hh"
#include "net/client.hh"
#include "net/router.hh"
#include "obs/span.hh"

namespace
{

using namespace depgraph;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kNumOps = 3;
const char *kOpNames[kNumOps] = {"query", "update", "del"};

struct OpStats
{
    std::mutex mu;
    std::vector<std::uint64_t> latenciesUs;

    void
    record(std::uint64_t us)
    {
        std::lock_guard lk(mu);
        latenciesUs.push_back(us);
    }
};

struct Summary
{
    std::string type;
    std::size_t count = 0;
    std::uint64_t meanUs = 0, p50Us = 0, p99Us = 0, maxUs = 0;
};

Summary
summarize(const std::string &type, std::vector<std::uint64_t> lat)
{
    Summary s;
    s.type = type;
    s.count = lat.size();
    if (lat.empty())
        return s;
    std::sort(lat.begin(), lat.end());
    std::uint64_t sum = 0;
    for (const auto v : lat)
        sum += v;
    s.meanUs = sum / lat.size();
    s.p50Us = lat[lat.size() / 2];
    s.p99Us = lat[std::min(lat.size() - 1,
                           static_cast<std::size_t>(
                               0.99 * static_cast<double>(lat.size())))];
    s.maxUs = lat.back();
    return s;
}

struct SharedCounters
{
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> protocolErrors{0};
    std::atomic<std::uint64_t> transportErrors{0};
    std::atomic<std::uint64_t> reconnects{0};
    std::mutex errMu;
    std::vector<std::string> errSamples;

    void
    noteError(const std::string &line)
    {
        protocolErrors.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard lk(errMu);
        if (errSamples.size() < 10)
            errSamples.push_back(line);
    }
};

/** Parse "retry-after=<ms>" out of an err 429 reply; 0 if absent. */
std::uint64_t
retryAfterMs(const std::string &reply)
{
    const auto pos = reply.find("retry-after=");
    if (pos == std::string::npos)
        return 0;
    try {
        return std::stoull(reply.substr(pos + 12));
    } catch (...) {
        return 0;
    }
}

/** Exponential backoff with full jitter: uniform over
 * [0, min(cap, base * 2^attempt)]. Jitter decorrelates a fleet of
 * workers that all lost the same server at the same instant -- without
 * it they reconnect in lockstep and stampede the restarted process. */
std::uint64_t
backoffDelayMs(unsigned attempt, std::mt19937_64 &rng,
               std::uint64_t base_ms = 10,
               std::uint64_t cap_ms = 2000)
{
    const std::uint64_t ceiling =
        std::min(cap_ms, base_ms << std::min(attempt, 20u));
    return std::uniform_int_distribution<std::uint64_t>(0,
                                                        ceiling)(rng);
}

/**
 * Connect with bounded retries. A refused/reset connect sleeps the
 * jittered backoff and tries again -- a server mid-restart (crash
 * recovery, rolling deploy) comes back within a few hundred ms and
 * the run should ride that out instead of failing the worker.
 */
bool
connectWithRetry(net::Client &c, const std::string &endpoint,
                 std::chrono::milliseconds timeout,
                 std::mt19937_64 &rng, unsigned max_attempts)
{
    for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
        if (c.connectEndpoint(endpoint, timeout))
            return true;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(backoffDelayMs(attempt, rng)));
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    o.declare("host", "127.0.0.1", "server host");
    o.declare("port", "7411", "server port");
    o.declare("shards", "",
              "comma-separated host:port fleet; graphs route across "
              "it by consistent hash (overrides --host/--port)");
    o.declare("connections", "8", "concurrent client connections");
    o.declare("requests", "200", "requests per connection");
    o.declare("graphs", "2", "distinct graphs driven");
    o.declare("n", "2000", "vertices per generated graph");
    o.declare("algo", "pagerank", "query algorithm");
    o.declare("solution", "Sequential",
              "engine for served queries (Sequential is bitwise "
              "deterministic)");
    o.declare("mix_query", "0.6", "fraction of query requests");
    o.declare("mix_update", "0.3", "fraction of edge insertions");
    o.declare("mix_del", "0.1", "fraction of edge deletions");
    o.declare("seed", "1", "workload RNG seed");
    o.declare("setup", "true",
              "load the graphs before driving traffic");
    o.declare("timeout_ms", "30000", "per-reply receive timeout");
    o.declare("connect_retries", "10",
              "bounded connect attempts (initial and per reconnect), "
              "exponential backoff with jitter between them");
    o.declare("trace_every", "0",
              "prepend a fresh trace=<id> token to every Kth request "
              "per worker, and finish with a fan-out probe that sends "
              "ONE trace id to every shard (0 = off)");
    o.declare("json", "", "write results to this JSON file");
    o.parse(argc, argv);

    const auto connections =
        static_cast<unsigned>(o.getInt("connections"));
    const auto requests =
        static_cast<std::size_t>(o.getInt("requests"));
    const auto num_graphs =
        std::max<std::size_t>(1, static_cast<std::size_t>(
                                     o.getInt("graphs")));
    const auto n = o.getInt("n");
    const auto algo = o.getString("algo");
    const auto solution = o.getString("solution");
    const auto timeout =
        std::chrono::milliseconds(o.getInt("timeout_ms"));
    const auto connect_retries = std::max<unsigned>(
        1, static_cast<unsigned>(o.getInt("connect_retries")));
    const double mix[kNumOps] = {o.getDouble("mix_query"),
                                 o.getDouble("mix_update"),
                                 o.getDouble("mix_del")};
    const auto trace_every =
        static_cast<std::size_t>(o.getInt("trace_every"));

    // Fleet: every client computes placement with the same ring the
    // operators configured, so a graph's traffic always lands on the
    // shard that owns (and caches) it.
    net::ShardRouter router;
    std::string shards = o.getString("shards");
    if (shards.empty()) {
        router.add(o.getString("host") + ":"
                   + std::to_string(o.getInt("port")));
    } else {
        std::istringstream is(shards);
        std::string ep;
        while (std::getline(is, ep, ','))
            if (!ep.empty())
                router.add(ep);
    }

    std::vector<std::string> graph_names;
    for (std::size_t g = 0; g < num_graphs; ++g) {
        // Built with += rather than operator+ to sidestep a gcc-12
        // -Wrestrict false positive (PR 105329) on string concat.
        std::string name = "g";
        name += std::to_string(g);
        graph_names.push_back(std::move(name));
    }

    if (o.getBool("setup")) {
        std::mt19937_64 setup_rng(
            static_cast<std::uint64_t>(o.getInt("seed")) ^ 0x5e7f);
        for (const auto &name : graph_names) {
            net::Client c;
            if (!connectWithRetry(c, router.shardForGraph(name),
                                  timeout, setup_rng,
                                  connect_retries)) {
                std::cerr << "dgload: connect "
                          << router.shardForGraph(name) << ": "
                          << c.error() << "\n";
                return 1;
            }
            std::ostringstream cmd;
            cmd << "load " << name << " powerlaw " << n << " 2.0 8 "
                << o.getInt("seed");
            std::string reply;
            if (!c.sendLine(cmd.str()) || !c.recvLine(reply)
                || reply.rfind("ok", 0) != 0) {
                std::cerr << "dgload: load failed: " << reply << " "
                          << c.error() << "\n";
                return 1;
            }
        }
    }

    OpStats per_op[kNumOps];
    SharedCounters counters;

    const auto t0 = Clock::now();
    std::vector<std::thread> workers;
    workers.reserve(connections);
    for (unsigned t = 0; t < connections; ++t) {
        workers.emplace_back([&, t] {
            const auto &graph = graph_names[t % graph_names.size()];
            std::mt19937_64 rng(
                static_cast<std::uint64_t>(o.getInt("seed")) * 7919
                + t);
            net::Client c;
            if (!connectWithRetry(c, router.shardForGraph(graph),
                                  timeout, rng, connect_retries)) {
                counters.transportErrors.fetch_add(
                    1, std::memory_order_relaxed);
                return;
            }
            std::uniform_real_distribution<double> pick(0.0, 1.0);
            std::uniform_int_distribution<std::int64_t> vertex(
                0, std::max<std::int64_t>(1, n - 1));

            for (std::size_t i = 0; i < requests; ++i) {
                const double p = pick(rng);
                std::size_t op = 0;
                if (p >= mix[0] && p < mix[0] + mix[1])
                    op = 1;
                else if (p >= mix[0] + mix[1])
                    op = 2;

                std::ostringstream cmd;
                // Client-side trace propagation: a trace= token rides
                // the line protocol and force-samples the request on
                // whichever shard serves it.
                if (trace_every != 0 && i % trace_every == 0)
                    cmd << "trace="
                        << obs::span::formatTraceId(
                               obs::span::newTraceId())
                        << " ";
                if (op == 0)
                    cmd << "query " << graph << " " << algo << " "
                        << solution << " 1";
                else if (op == 1)
                    cmd << "update " << graph << " " << vertex(rng)
                        << " " << vertex(rng) << " 1";
                else
                    cmd << "del " << graph << " " << vertex(rng)
                        << " " << vertex(rng);

                // Retry sheds with the advertised backoff; anything
                // else that is not "ok" is a protocol error.
                for (int attempt = 0; attempt < 50; ++attempt) {
                    const auto start = Clock::now();
                    std::string reply;
                    if (!c.sendLine(cmd.str())
                        || !c.recvLine(reply)) {
                        // ECONNRESET/EPIPE/EOF mid-run: the server
                        // dropped us (restart, force-close, crash).
                        // Reconnect with jittered backoff and resend
                        // THIS request. NOTE at-least-once semantics:
                        // the lost reply's request may have applied,
                        // so a resent update can double-apply -- the
                        // price of a throughput driver that rides
                        // through restarts. Workloads needing exact
                        // counts use the chaos harness instead.
                        c.close();
                        if (!connectWithRetry(
                                c, router.shardForGraph(graph),
                                timeout, rng, connect_retries)) {
                            counters.transportErrors.fetch_add(
                                1, std::memory_order_relaxed);
                            return;
                        }
                        counters.reconnects.fetch_add(
                            1, std::memory_order_relaxed);
                        continue;
                    }
                    const auto us = static_cast<std::uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::microseconds>(Clock::now()
                                                       - start)
                            .count());
                    if (reply.rfind("ok", 0) == 0) {
                        per_op[op].record(us);
                        counters.ok.fetch_add(
                            1, std::memory_order_relaxed);
                        break;
                    }
                    if (reply.rfind("err 429", 0) == 0) {
                        counters.shed.fetch_add(
                            1, std::memory_order_relaxed);
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(std::max<
                                                      std::uint64_t>(
                                1, retryAfterMs(reply))));
                        continue;
                    }
                    counters.noteError(reply);
                    break;
                }
            }
            c.sendLine("quit");
        });
    }
    for (auto &w : workers)
        w.join();
    const auto wall_ms = std::chrono::duration_cast<
                             std::chrono::milliseconds>(Clock::now()
                                                        - t0)
                             .count();

    // Fan-out probe: after the load run, ONE trace id visits every
    // shard, so merging the shards' dumps with tools/dgtrace yields a
    // single request stitched across all their processes.
    std::string fanout_trace;
    std::size_t fanout_shards = 0;
    if (trace_every != 0) {
        fanout_trace =
            obs::span::formatTraceId(obs::span::newTraceId());
        std::mt19937_64 fan_rng(
            static_cast<std::uint64_t>(o.getInt("seed")) ^ 0xfa17);
        for (const auto &ep : router.endpoints()) {
            // Prefer a graph this shard owns so the traced leg does
            // real engine work; fall back to the graphs verb (its
            // reply is a single `ok` line whatever the shard holds).
            std::string cmd = "trace=" + fanout_trace + " graphs";
            for (const auto &g : graph_names)
                if (router.shardForGraph(g) == ep) {
                    cmd = "trace=" + fanout_trace + " query " + g
                        + " " + algo + " " + solution + " 1";
                    break;
                }
            net::Client c;
            if (!connectWithRetry(c, ep, timeout, fan_rng,
                                  connect_retries))
                continue;
            std::string reply;
            if (c.sendLine(cmd) && c.recvLine(reply)
                && reply.rfind("ok", 0) == 0)
                ++fanout_shards;
            c.sendLine("quit");
        }
    }

    std::vector<Summary> summaries;
    std::vector<std::uint64_t> all;
    for (std::size_t op = 0; op < kNumOps; ++op) {
        auto lat = per_op[op].latenciesUs;
        all.insert(all.end(), lat.begin(), lat.end());
        summaries.push_back(summarize(kOpNames[op], std::move(lat)));
    }
    summaries.push_back(summarize("all", std::move(all)));

    const auto ok = counters.ok.load();
    const double rps = wall_ms > 0
        ? 1000.0 * static_cast<double>(ok)
            / static_cast<double>(wall_ms)
        : 0.0;

    std::cout << "dgload: " << connections << " connections x "
              << requests << " requests over " << router.size()
              << " shard(s), " << wall_ms << " ms, " << rps
              << " req/s\n";
    std::cout << "  ok=" << ok << " shed=" << counters.shed.load()
              << " protocol_errors="
              << counters.protocolErrors.load()
              << " transport_errors="
              << counters.transportErrors.load()
              << " reconnects=" << counters.reconnects.load() << "\n";
    for (const auto &s : summaries)
        std::cout << "  " << s.type << ": count=" << s.count
                  << " mean=" << s.meanUs << "us p50=" << s.p50Us
                  << "us p99=" << s.p99Us << "us max=" << s.maxUs
                  << "us\n";
    if (!fanout_trace.empty())
        std::cout << "  fanout trace=" << fanout_trace << " shards="
                  << fanout_shards << "/" << router.size() << "\n";
    for (const auto &e : counters.errSamples)
        std::cout << "  err sample: " << e << "\n";

    const auto json_path = o.getString("json");
    if (!json_path.empty()) {
        std::ofstream js(json_path);
        js << "[\n";
        bool first = true;
        for (const auto &s : summaries) {
            if (!first)
                js << ",\n";
            first = false;
            js << "  {\"type\": \"" << s.type
               << "\", \"count\": " << s.count
               << ", \"mean_us\": " << s.meanUs
               << ", \"p50_us\": " << s.p50Us
               << ", \"p99_us\": " << s.p99Us
               << ", \"max_us\": " << s.maxUs << "}";
        }
        js << ",\n  {\"type\": \"run\", \"connections\": "
           << connections << ", \"requests_per_connection\": "
           << requests << ", \"shards\": " << router.size()
           << ", \"wall_ms\": " << wall_ms << ", \"rps\": " << rps
           << ", \"ok\": " << ok
           << ", \"shed\": " << counters.shed.load()
           << ", \"protocol_errors\": "
           << counters.protocolErrors.load()
           << ", \"transport_errors\": "
           << counters.transportErrors.load()
           << ", \"reconnects\": " << counters.reconnects.load()
           << ", \"fanout_trace\": \"" << fanout_trace
           << "\", \"fanout_shards\": " << fanout_shards
           << "}\n]\n";
        std::cout << "wrote " << json_path << "\n";
    }

    return counters.protocolErrors.load() > 0
            || counters.transportErrors.load() > 0
        ? 1
        : 0;
}
