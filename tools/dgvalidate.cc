/**
 * @file
 * dgvalidate — cross-checks every execution solution against the
 * synchronous reference fixpoint on a given graph and algorithm set
 * (the executable form of Theorem 1, usable on user graphs).
 *
 * Exits non-zero if any solution diverges beyond the tolerance.
 *
 * Examples:
 *   dgvalidate --dataset PK --dscale 0.1
 *   dgvalidate --graph my.txt --algos sssp,wcc --tolerance 1e-4
 */

#include <cstdio>
#include <sstream>

#include "common/options.hh"
#include "common/table.hh"
#include "core/depgraph_system.hh"
#include "gas/reference.hh"
#include "graph/datasets.hh"
#include "graph/edge_list.hh"
#include "graph/generators.hh"

using namespace depgraph;

int
main(int argc, char **argv)
{
    Options o;
    o.declare("graph", "", "text edge list path");
    o.declare("dataset", "", "Table III stand-in name (GL..FS)");
    o.declare("dscale", "0.1", "dataset scale factor");
    o.declare("algos", "pagerank,sssp,wcc,adsorption",
              "comma-separated algorithm list");
    o.declare("cores", "8", "simulated cores");
    o.declare("tolerance", "1e-3", "max |state difference| allowed");
    o.parse(argc, argv);

    graph::Graph g = [&]() -> graph::Graph {
        if (!o.getString("graph").empty())
            return graph::loadEdgeListText(o.getString("graph"));
        if (!o.getString("dataset").empty())
            return graph::makeDataset(o.getString("dataset"),
                                      o.getDouble("dscale"));
        return graph::powerLaw(1000, 2.0, 8.0, {.seed = 1});
    }();
    std::printf("validating on %u vertices / %llu edges, tolerance "
                "%g\n\n",
                g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()),
                o.getDouble("tolerance"));

    SystemConfig cfg;
    cfg.machine.numCores = static_cast<unsigned>(o.getInt("cores"));
    cfg.engine.numCores = cfg.machine.numCores;
    DepGraphSystem sys(cfg);
    const double tol = o.getDouble("tolerance");

    std::vector<std::string> algos;
    {
        std::stringstream ss(o.getString("algos"));
        std::string item;
        while (std::getline(ss, item, ','))
            if (!item.empty())
                algos.push_back(item);
    }

    Table t({"algorithm", "solution", "max_diff", "verdict"});
    bool all_ok = true;
    for (const auto &algo : algos) {
        const auto gold_alg = gas::makeAlgorithm(algo);
        const auto gold = gas::runReference(g, *gold_alg);
        if (!gold.converged) {
            t.addRow({algo, "(reference)", "-", "NO CONVERGENCE"});
            all_ok = false;
            continue;
        }
        for (auto s : allSolutions()) {
            const auto r = sys.run(g, algo, s);
            const auto diff =
                gas::maxStateDifference(r.states, gold.states);
            const bool ok = diff <= tol && r.metrics.converged;
            all_ok = all_ok && ok;
            t.addRow({algo, solutionName(s), Table::fmt(diff, 6),
                      ok ? "ok" : "FAIL"});
        }
    }
    t.print();
    std::printf("\n%s\n", all_ok ? "ALL SOLUTIONS AGREE"
                                 : "DIVERGENCE DETECTED");
    return all_ok ? 0 : 1;
}
