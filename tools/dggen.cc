/**
 * @file
 * dggen — generate a synthetic graph and write it as a text edge list
 * or the compact binary format.
 *
 * Examples:
 *   dggen --gen powerlaw --n 50000 --degree 12 --out g.txt
 *   dggen --gen chain --n 40000 --alpha 2.1 --out g.bin --format bin
 *   dggen --dataset FS --dscale 0.5 --out fs.bin --format bin
 */

#include <cstdio>

#include "common/options.hh"
#include "graph/datasets.hh"
#include "graph/edge_list.hh"
#include "graph/generators.hh"

using namespace depgraph;
using namespace depgraph::graph;

int
main(int argc, char **argv)
{
    Options o;
    o.declare("gen", "powerlaw",
              "powerlaw|tablev|rmat|er|grid|path|ring|star|tree|chain");
    o.declare("dataset", "", "generate a Table III stand-in instead");
    o.declare("dscale", "1.0", "dataset scale factor");
    o.declare("n", "10000", "vertex count");
    o.declare("alpha", "2.0", "power-law exponent");
    o.declare("degree", "8", "average degree");
    o.declare("edges", "0", "edge count (er/rmat; 0 = degree * n)");
    o.declare("seed", "42", "generator seed");
    o.declare("unweighted", "0", "omit edge weights");
    o.declare("out", "graph.txt", "output path");
    o.declare("format", "txt", "txt | bin");
    o.parse(argc, argv);

    GenOptions gopt;
    gopt.seed = static_cast<std::uint64_t>(o.getInt("seed"));
    gopt.weighted = !o.getBool("unweighted");
    const auto n = static_cast<VertexId>(o.getInt("n"));
    const double alpha = o.getDouble("alpha");
    const double degree = o.getDouble("degree");
    auto edges = static_cast<EdgeId>(o.getInt("edges"));
    if (edges == 0)
        edges = static_cast<EdgeId>(degree * static_cast<double>(n));

    Graph g = [&]() -> Graph {
        if (!o.getString("dataset").empty())
            return makeDataset(o.getString("dataset"),
                               o.getDouble("dscale"));
        const auto kind = o.getString("gen");
        if (kind == "powerlaw")
            return powerLaw(n, alpha, degree, gopt);
        if (kind == "tablev")
            return powerLawTableV(n, alpha, gopt);
        if (kind == "rmat") {
            unsigned lg = 0;
            while ((VertexId{1} << (lg + 1)) <= n)
                ++lg;
            return rmat(lg, edges, 0.57, 0.19, 0.19, gopt);
        }
        if (kind == "er")
            return erdosRenyi(n, edges, gopt);
        if (kind == "grid") {
            VertexId side = 1;
            while (side * side < n)
                ++side;
            return grid(side, side, gopt);
        }
        if (kind == "path")
            return path(n, gopt);
        if (kind == "ring")
            return ring(n, gopt);
        if (kind == "star")
            return star(n, gopt);
        if (kind == "tree")
            return binaryTree(n, gopt);
        if (kind == "chain")
            return communityChain(16, n / 16 + 1, alpha, degree, 2,
                                  gopt);
        dg_fatal("unknown generator '", kind, "'");
    }();

    const auto out = o.getString("out");
    if (o.getString("format") == "bin")
        saveBinary(g, out);
    else
        saveEdgeListText(g, out);
    std::printf("wrote %s: %u vertices, %llu edges (%s)\n",
                out.c_str(), g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()),
                g.weighted() ? "weighted" : "unweighted");
    return 0;
}
