/**
 * @file
 * dgtrace — merge Chrome trace_event dumps from several shard
 * processes into one trace.
 *
 *   dgtrace --out merged.json [--trace <hex-id>] shard0.json shard1.json ...
 *
 * Each input is one process's `trace dump` output. The merger:
 *  - gives each input a distinct pid (input order) and emits a
 *    process_name metadata event carrying the source filename;
 *  - aligns clocks: every dump records otherData.epochUnixUs (the wall
 *    clock of its steady-clock trace epoch), so shifting each file's
 *    timestamps by (epochUnixUs - min epochUnixUs) puts all processes
 *    on one timeline;
 *  - with --trace <hex-id>, keeps only events tagged args.trace ==
 *    <hex-id> (plus metadata), isolating one request's spans across
 *    the whole fleet.
 *
 * The result loads in about://tracing / ui.perfetto.dev; spans of one
 * request share an args.trace value across pids.
 */

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/span.hh"

namespace
{

using namespace depgraph;

/** Serialize a parsed value back to JSON; integral doubles print as
 * integers so round-tripped timestamps stay exact. */
void
render(std::ostringstream &os, const obs::json::Value &v)
{
    using Type = obs::json::Value::Type;
    switch (v.type()) {
      case Type::Null:
        os << "null";
        break;
      case Type::Bool:
        os << (v.asBool() ? "true" : "false");
        break;
      case Type::Number: {
        const double d = v.asNumber();
        if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15)
            os << static_cast<long long>(d);
        else
            os << d;
        break;
      }
      case Type::String: {
        os << '"';
        for (const char c : v.asString()) {
            switch (c) {
              case '"':
                os << "\\\"";
                break;
              case '\\':
                os << "\\\\";
                break;
              case '\n':
                os << "\\n";
                break;
              case '\t':
                os << "\\t";
                break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(c) & 0xff);
                    os << buf;
                } else {
                    os << c;
                }
            }
        }
        os << '"';
        break;
      }
      case Type::Array: {
        os << '[';
        bool first = true;
        for (const auto &e : v.asArray()) {
            if (!first)
                os << ',';
            first = false;
            render(os, e);
        }
        os << ']';
        break;
      }
      case Type::Object: {
        os << '{';
        bool first = true;
        for (const auto &[k, val] : v.asObject()) {
            if (!first)
                os << ',';
            first = false;
            os << '"' << k << "\":";
            render(os, val);
        }
        os << '}';
        break;
      }
    }
}

struct Input
{
    std::string path;
    obs::json::Value doc;
    std::uint64_t epochUnixUs = 0;
};

int
usage()
{
    std::cerr
        << "usage: dgtrace --out <merged.json> [--trace <hex-id>] "
           "<shard.json> [<shard.json> ...]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    std::string trace_filter;
    std::vector<std::string> inputs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            trace_filter = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            return usage();
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "dgtrace: unknown option '" << arg << "'\n";
            return usage();
        } else {
            inputs.push_back(arg);
        }
    }
    if (out_path.empty() || inputs.empty())
        return usage();
    if (!trace_filter.empty()) {
        // Canonicalize so `--trace 0xAB..` matches the dump format.
        std::uint64_t id = 0;
        if (!obs::span::parseTraceId(trace_filter, id)) {
            std::cerr << "dgtrace: bad --trace id '" << trace_filter
                      << "'\n";
            return 2;
        }
        trace_filter = obs::span::formatTraceId(id);
    }

    std::vector<Input> files;
    std::uint64_t min_epoch = UINT64_MAX;
    for (const auto &path : inputs) {
        std::ifstream is(path);
        if (!is) {
            std::cerr << "dgtrace: cannot open '" << path << "'\n";
            return 1;
        }
        std::ostringstream buf;
        buf << is.rdbuf();
        std::string err;
        auto doc = obs::json::parse(buf.str(), &err);
        if (!doc || !doc->isObject()) {
            std::cerr << "dgtrace: " << path << ": " << err << "\n";
            return 1;
        }
        Input in;
        in.path = path;
        if (const auto *other = doc->find("otherData"))
            if (const auto *epoch = other->find("epochUnixUs"))
                in.epochUnixUs =
                    static_cast<std::uint64_t>(epoch->asNumber());
        in.doc = std::move(*doc);
        min_epoch = std::min(min_epoch, in.epochUnixUs);
        files.push_back(std::move(in));
    }
    if (min_epoch == UINT64_MAX)
        min_epoch = 0;

    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    std::size_t kept = 0, dropped = 0;
    for (std::size_t f = 0; f < files.size(); ++f) {
        const auto pid = f + 1;
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"name\":\"";
        for (const char c : files[f].path)
            if (c == '"' || c == '\\')
                os << '\\' << c;
            else
                os << c;
        os << "\"}}";

        const auto *events = files[f].doc.find("traceEvents");
        if (!events || !events->isArray())
            continue;
        const std::uint64_t shift =
            files[f].epochUnixUs - min_epoch;
        for (const auto &ev : events->asArray()) {
            if (!ev.isObject())
                continue;
            if (!trace_filter.empty()) {
                const auto *args = ev.find("args");
                const auto *trace =
                    args ? args->find("trace") : nullptr;
                if (!trace || !trace->isString()
                    || trace->asString() != trace_filter) {
                    ++dropped;
                    continue;
                }
            }
            ++kept;
            os << ",{";
            bool first_key = true;
            for (const auto &[k, val] : ev.asObject()) {
                if (!first_key)
                    os << ',';
                first_key = false;
                os << '"' << k << "\":";
                if (k == "pid") {
                    os << pid;
                } else if (k == "ts" && val.isNumber()) {
                    os << static_cast<std::uint64_t>(val.asNumber())
                            + shift;
                } else {
                    render(os, val);
                }
            }
            os << '}';
        }
    }
    os << "],\"displayTimeUnit\":\"ms\"}";

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "dgtrace: cannot write '" << out_path << "'\n";
        return 1;
    }
    out << os.str();
    std::cout << "dgtrace: merged " << files.size() << " file(s), "
              << kept << " event(s)";
    if (!trace_filter.empty())
        std::cout << " matching trace=" << trace_filter << " ("
                  << dropped << " filtered out)";
    std::cout << " -> " << out_path << "\n";
    return 0;
}
