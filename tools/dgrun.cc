/**
 * @file
 * dgrun — run any supported algorithm on any graph under any solution
 * from the command line and print the full metric set.
 *
 * Graph sources (first match wins):
 *   --graph <path>        load a text edge list (SNAP format)
 *   --binary <path>       load the compact binary format
 *   --dataset <GL..FS>    build a Table III stand-in (with --dscale)
 *   --gen powerlaw|rmat|grid|chain  synthesize (with --n, --alpha,
 *                         --degree, --seed)
 *
 * Examples:
 *   dgrun --dataset FS --algo sssp --solution DepGraph-H
 *   dgrun --gen powerlaw --n 20000 --algo pagerank \
 *         --solution Ligra-o --cores 32
 *   dgrun --graph my_edges.txt --algo wcc --solution DepGraph-H-w
 */

#include <cstdio>
#include <fstream>
#include <optional>

#include "common/options.hh"
#include "common/table.hh"
#include "core/depgraph_system.hh"
#include "graph/datasets.hh"
#include "graph/edge_list.hh"
#include "graph/generators.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "runtime/obs_export.hh"

using namespace depgraph;

namespace
{

graph::Graph
buildGraph(const Options &o)
{
    const auto path = o.getString("graph");
    if (!path.empty())
        return graph::loadEdgeListText(path);
    const auto bin = o.getString("binary");
    if (!bin.empty())
        return graph::loadBinary(bin);
    const auto ds = o.getString("dataset");
    if (!ds.empty())
        return graph::makeDataset(ds, o.getDouble("dscale"));

    const auto gen = o.getString("gen");
    const auto n = static_cast<VertexId>(o.getInt("n"));
    graph::GenOptions gopt;
    gopt.seed = static_cast<std::uint64_t>(o.getInt("seed"));
    if (gen == "powerlaw")
        return graph::powerLaw(n, o.getDouble("alpha"),
                               o.getDouble("degree"), gopt);
    if (gen == "rmat") {
        unsigned lg = 0;
        while ((VertexId{1} << (lg + 1)) <= n)
            ++lg;
        return graph::rmat(lg, static_cast<EdgeId>(
            o.getDouble("degree") * static_cast<double>(n)), 0.57,
            0.19, 0.19, gopt);
    }
    if (gen == "grid") {
        VertexId side = 1;
        while (side * side < n)
            ++side;
        return graph::grid(side, side, gopt);
    }
    if (gen == "chain")
        return graph::communityChain(16, n / 16 + 1, o.getDouble("alpha"),
                                     o.getDouble("degree"), 2, gopt);
    dg_fatal("no graph source given (try --help)");
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    o.declare("graph", "", "text edge list path");
    o.declare("binary", "", "binary graph path");
    o.declare("dataset", "", "Table III stand-in name (GL..FS)");
    o.declare("dscale", "0.2", "dataset scale factor");
    o.declare("gen", "", "generator: powerlaw|rmat|grid|chain");
    o.declare("n", "10000", "generator vertex count");
    o.declare("alpha", "2.0", "power-law exponent");
    o.declare("degree", "8", "average degree");
    o.declare("seed", "42", "generator seed");
    o.declare("algo", "pagerank",
              "pagerank|adsorption|katz|sssp|wcc|sswp|bfs");
    o.declare("solution", "DepGraph-H",
              "Sequential|Ligra|Mosaic|Wonderland|FBSGraph|Ligra-o|"
              "HATS|Minnow|PHI|DepGraph-S|DepGraph-H|DepGraph-H-w");
    o.declare("engine", "sim",
              "sim (cycle model, per --solution) | parallel (native "
              "host threads)");
    o.declare("threads", "0",
              "host threads for --engine=parallel (0 = hardware "
              "concurrency, capped at 16)");
    o.declare("numa", "auto",
              "parallel-engine NUMA placement: auto|off");
    o.declare("carry", "1",
              "parallel engine: carry the active list across rounds "
              "(0 = full rescan every round)");
    o.declare("adaptive-chunk", "1",
              "parallel engine: retune chunk granularity per round "
              "from steal/idle feedback");
    o.declare("chunk", "32",
              "parallel engine: work-stealing chunk size (initial "
              "value when adaptive)");
    o.declare("cores", "16", "simulated cores");
    o.declare("lambda", "0.005", "hub fraction");
    o.declare("stack", "10", "HDTL stack depth");
    o.declare("top", "5", "print the top-N vertices by state");
    o.declare("metrics-out", "",
              "write Prometheus text exposition to this file");
    o.declare("trace-out", "",
              "write Chrome trace_event JSON to this file");
    o.parse(argc, argv);

    const auto metrics_out = o.getString("metrics-out");
    const auto trace_out = o.getString("trace-out");
    if (!trace_out.empty())
        obs::span::setEnabled(true);

    std::optional<graph::Graph> loaded;
    {
        obs::span::Scoped load_span("tool", "load");
        loaded = buildGraph(o);
    }
    const auto &g = *loaded;
    std::printf("graph: %u vertices, %llu edges\n", g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()));

    SystemConfig cfg;
    cfg.machine.numCores = static_cast<unsigned>(o.getInt("cores"));
    cfg.engine.numCores = cfg.machine.numCores;
    cfg.engine.hub.lambda = o.getDouble("lambda");
    cfg.engine.stackDepth = static_cast<unsigned>(o.getInt("stack"));
    cfg.engine.hostThreads =
        static_cast<unsigned>(o.getInt("threads"));
    cfg.engine.carryActiveList = o.getInt("carry") != 0;
    cfg.engine.adaptiveChunking = o.getInt("adaptive-chunk") != 0;
    cfg.engine.chunkSize = static_cast<unsigned>(o.getInt("chunk"));
    const auto numa = o.getString("numa");
    if (numa == "off")
        cfg.engine.numa = runtime::NumaMode::Off;
    else if (numa == "auto")
        cfg.engine.numa = runtime::NumaMode::Auto;
    else
        dg_fatal("unknown --numa '", numa, "' (auto|off)");

    const auto engine_kind = o.getString("engine");
    Solution sol;
    if (engine_kind == "parallel") {
        sol = Solution::Parallel;
    } else if (engine_kind == "sim") {
        sol = solutionFromName(o.getString("solution"));
    } else {
        dg_fatal("unknown --engine '", engine_kind,
                 "' (sim|parallel)");
    }
    DepGraphSystem sys(cfg);
    runtime::RunResult r;
    {
        obs::span::Scoped run_span("tool", "run");
        r = sys.run(g, o.getString("algo"), sol);
    }
    const auto &mx = r.metrics;

    if (!metrics_out.empty()) {
        auto &reg = obs::registry();
        runtime::publishRunResult(
            reg, r,
            {{"algo", o.getString("algo")},
             {"solution", solutionName(sol)}});
        std::ofstream os(metrics_out);
        if (!os)
            dg_fatal("cannot open --metrics-out '", metrics_out, "'");
        os << reg.renderPrometheus();
        std::printf("metrics: %s\n", metrics_out.c_str());
    }
    if (!trace_out.empty()) {
        std::ofstream os(trace_out);
        if (!os)
            dg_fatal("cannot open --trace-out '", trace_out, "'");
        os << obs::span::dumpChromeJson();
        std::printf("trace: %s (%llu events, %llu dropped)\n",
                    trace_out.c_str(),
                    static_cast<unsigned long long>(
                        obs::span::recordedEvents()),
                    static_cast<unsigned long long>(
                        obs::span::droppedEvents()));
    }

    Table t({"metric", "value"});
    t.addRow({"solution", solutionName(sol)});
    t.addRow({"algorithm", o.getString("algo")});
    t.addRow({"converged", mx.converged ? "yes" : "no"});
    t.addRow({"rounds", Table::fmt(std::uint64_t{mx.rounds})});
    t.addRow({"updates", Table::fmt(mx.updates)});
    t.addRow({"edge ops", Table::fmt(mx.edgeOps)});
    if (sol == Solution::Parallel) {
        t.addRow({"makespan (wall ns)", Table::fmt(mx.makespan)});
        t.addRow({"wall time (ms)",
                  Table::fmt(static_cast<double>(mx.makespan) / 1e6,
                             3)});
        t.addRow({"host threads", Table::fmt(
                      std::uint64_t{mx.coresUsed})});
        t.addRow({"actives carried", Table::fmt(mx.activesCarried)});
        t.addRow({"rescan fallbacks",
                  Table::fmt(mx.rescanFallbacks)});
        t.addRow({"final chunk size", Table::fmt(
                      std::uint64_t{mx.chunkSizeFinal})});
    } else {
        t.addRow({"makespan (cycles)", Table::fmt(mx.makespan)});
        t.addRow({"sim time (ms @2.5GHz)",
                  Table::fmt(static_cast<double>(mx.makespan) / 2.5e6,
                             3)});
    }
    t.addRow({"utilization", Table::fmt(mx.utilization(), 3)});
    t.addRow({"other-time share", Table::fmt(mx.otherTimeShare(), 3)});
    t.addRow({"L1 hit rate", Table::fmt(r.memStats.l1.hitRate(), 3)});
    t.addRow({"L2 hit rate", Table::fmt(r.memStats.l2.hitRate(), 3)});
    t.addRow({"L3 hit rate", Table::fmt(r.memStats.l3.hitRate(), 3)});
    t.addRow({"DRAM accesses", Table::fmt(r.memStats.dramAccesses)});
    t.addRow({"energy (mJ)", Table::fmt(r.energy.totalMj(), 3)});
    if (mx.hubIndexBytes) {
        t.addRow({"hub index entries", Table::fmt(mx.hubIndexInserts)});
        t.addRow({"shortcuts fired", Table::fmt(mx.shortcutsApplied)});
    }
    t.print();

    const auto top = static_cast<std::size_t>(o.getInt("top"));
    if (top > 0) {
        std::vector<VertexId> order(g.numVertices());
        for (VertexId v = 0; v < g.numVertices(); ++v)
            order[v] = v;
        std::partial_sort(
            order.begin(),
            order.begin()
                + static_cast<std::ptrdiff_t>(
                    std::min<std::size_t>(top, order.size())),
            order.end(), [&](VertexId a, VertexId b) {
                return r.states[a] > r.states[b];
            });
        std::printf("\ntop vertices by state:\n");
        for (std::size_t i = 0; i < top && i < order.size(); ++i)
            std::printf("  v%u = %g\n", order[i],
                        r.states[order[i]]);
    }
    return 0;
}
