/**
 * @file
 * dgserve — the graph-compute service behind a scriptable stdin/stdout
 * protocol. Reads newline-delimited requests, executes them on the
 * worker pool, prints one reply block per request (see
 * service/protocol.hh for the command set).
 *
 * Examples:
 *   printf 'load g powerlaw 5000\nquery g pagerank\nquit\n' | dgserve
 *   printf 'load g ring 64\ndel g 0 1\nflush g\nquit\n' | dgserve
 *   dgserve --workers 8 --queue 256 --block --stats_ms 2000 < script
 */

#include <iostream>

#include "common/options.hh"
#include "obs/span.hh"
#include "service/protocol.hh"

int
main(int argc, char **argv)
{
    using namespace depgraph;

    Options o;
    o.declare("workers", "4", "worker threads");
    o.declare("queue", "128", "job queue capacity");
    o.declare("block", "false",
              "block producers when the queue is full (default: "
              "reject)");
    o.declare("batch", "64",
              "pending-edge threshold that triggers a batch flush");
    o.declare("solution", "DepGraph-H",
              "engine for queries' default and incremental passes");
    o.declare("cores", "16", "simulated cores");
    o.declare("stats_ms", "0",
              "periodic stats log interval in ms (0 = off)");
    o.declare("metrics_ms", "0",
              "periodic registry publish interval in ms (0 = off; the "
              "'metrics' verb publishes on demand either way)");
    o.declare("trace", "false",
              "start with span tracing on (same as 'trace on')");
    o.declare("echo", "false", "echo each command before its reply");
    o.parse(argc, argv);

    service::ServiceOptions sopt;
    sopt.pool.numThreads = static_cast<unsigned>(o.getInt("workers"));
    sopt.pool.queueCapacity =
        static_cast<std::size_t>(o.getInt("queue"));
    sopt.pool.blockWhenFull = o.getBool("block");
    sopt.batcher.maxPendingEdges =
        static_cast<std::size_t>(o.getInt("batch"));
    sopt.batcher.solution = solutionFromName(o.getString("solution"));
    sopt.system.machine.numCores =
        static_cast<unsigned>(o.getInt("cores"));
    sopt.system.engine.numCores = sopt.system.machine.numCores;
    sopt.statsLogInterval =
        std::chrono::milliseconds(o.getInt("stats_ms"));
    sopt.metricsPublishInterval =
        std::chrono::milliseconds(o.getInt("metrics_ms"));
    if (o.getBool("trace"))
        obs::span::setEnabled(true);

    service::GraphService svc(sopt);
    const auto n = service::serveStream(svc, std::cin, std::cout,
                                        o.getBool("echo"));
    svc.drain();
    std::cout << svc.stats().logLine() << "\n";
    std::cout << "served " << n << " commands\n";
    return 0;
}
