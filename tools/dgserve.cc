/**
 * @file
 * dgserve — the graph-compute service, reachable two ways:
 *
 *  stdin mode (default): newline-delimited requests on stdin, one
 *  reply block per request on stdout. Scriptable:
 *    printf 'load g powerlaw 5000\nquery g pagerank\nquit\n' | dgserve
 *
 *  network mode (--listen <port>): the same protocol over TCP via the
 *  epoll server in src/net/, plus HTTP GET /metrics (Prometheus) and
 *  GET /healthz on the same port. Port 0 binds an ephemeral port; the
 *  chosen one is printed as "listening on <host>:<port>".
 *    dgserve --listen 7411 --workers 8 &
 *    printf 'load g ring 64\nquery g sssp\nquit\n' | nc 127.0.0.1 7411
 *    curl -s http://127.0.0.1:7411/metrics
 *
 * Durability (--data_dir <dir>): acknowledged mutations are journaled
 * to a per-graph WAL (--wal_sync picks the fsync policy) and graphs
 * are checkpointed (periodically with --checkpoint_every, or via the
 * `checkpoint` verb). On startup the latest valid checkpoints load and
 * the WAL suffix replays, so a SIGKILL/power loss no longer discards
 * acked writes. See docs/DURABILITY.md.
 *
 * Lifecycle: SIGTERM/SIGINT trigger a graceful drain in BOTH modes —
 * stop accepting input, finish accepted requests within --drain_ms,
 * flush pending update batches (acknowledged writes are never
 * dropped), then exit 0. A SECOND SIGTERM/SIGINT during the drain
 * skips the wait: connections force-close and the process exits
 * 128+signo immediately (the WAL keeps acked writes safe; that is
 * what it is for).
 */

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "common/failpoint.hh"
#include "common/options.hh"
#include "net/server.hh"
#include "obs/slowlog.hh"
#include "obs/span.hh"
#include "service/protocol.hh"

namespace
{

volatile std::sig_atomic_t g_signal = 0;

void
onSignal(int sig)
{
    if (g_signal) {
        // Second signal while draining: the operator means NOW.
        // _exit skips destructors/flushes by design -- durability of
        // acked writes is the WAL's job, not the drain's.
        _exit(128 + sig);
    }
    g_signal = sig;
}

/** stdin mode: handler without SA_RESTART so a blocking read on a
 * pipe/terminal returns EINTR and the loop can wind down instead of
 * the default action killing us mid-batch. */
void
installSignalHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // deliberately no SA_RESTART
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

void
reportRecovery(const depgraph::service::GraphService &svc)
{
    const auto &r = svc.recoveryReport();
    if (r.graphs.empty() && r.walRecordsReplayed == 0
        && r.tornTailsTruncated == 0)
        return;
    std::cout << "recovered " << r.graphs.size() << " graph(s) ("
              << r.checkpointsLoaded << " checkpoint(s), "
              << r.walRecordsReplayed << " WAL record(s), "
              << r.walBatchesReplayed << " batch(es), "
              << r.tornTailsTruncated << " torn tail(s) truncated, "
              << r.corruptCheckpoints << " corrupt checkpoint(s))";
    for (const auto &g : r.graphs)
        std::cout << " " << g;
    std::cout << "\n";
    std::cout.flush();
}

int
serveStdin(depgraph::service::GraphService &svc, bool echo,
           std::chrono::milliseconds drain_deadline)
{
    using namespace depgraph;

    installSignalHandlers();
    std::size_t executed = 0;
    std::string line;
    while (!g_signal && std::getline(std::cin, line)) {
        if (echo)
            std::cout << "> " << line << "\n";
        const auto r = service::runTracedCommandLine(svc, line);
        if (!r.output.empty())
            std::cout << r.output << "\n";
        std::cout.flush();
        ++executed;
        if (r.quit || g_signal)
            break;
    }

    const bool drained = svc.drainFor(drain_deadline);
    std::cout << svc.stats().logLine() << "\n";
    std::cout << "served " << executed << " commands";
    if (g_signal)
        std::cout << " (signal " << g_signal << ", "
                  << (drained ? "drained" : "drain deadline hit")
                  << ")";
    std::cout << "\n";
    return 0;
}

int
serveListen(depgraph::service::GraphService &svc,
            depgraph::net::ServerOptions nopt,
            std::chrono::milliseconds drain_deadline,
            const sigset_t &sigs)
{
    using namespace depgraph;

    net::Server server(svc, std::move(nopt));
    if (!server.start()) {
        std::cerr << "dgserve: cannot listen on "
                  << server.options().host << ":"
                  << server.options().port << ": "
                  << server.lastError() << "\n";
        return 1;
    }
    reportRecovery(svc);
    std::cout << "listening on " << server.options().host << ":"
              << server.port() << "\n";
    std::cout.flush();

    int sig = 0;
    sigwait(&sigs, &sig);
    std::cout << "signal " << sig << ": draining (deadline "
              << drain_deadline.count() << "ms)\n";
    std::cout.flush();

    // Drain in the background so main can keep listening for a second
    // signal -- an operator (or supervisor) that signals again wants
    // an immediate exit, not the remainder of --drain_ms.
    bool clean = false;
    std::atomic<bool> done{false};
    std::thread drainer([&] {
        clean = server.drainAndStop(drain_deadline);
        done.store(true, std::memory_order_release);
    });
    struct timespec poll = {0, 100 * 1000 * 1000}; // 100ms
    while (!done.load(std::memory_order_acquire)) {
        const int again = sigtimedwait(&sigs, nullptr, &poll);
        if (again > 0) {
            std::cout << "second signal " << again
                      << ": force close, immediate exit\n";
            std::cout.flush();
            // Skips destructors on purpose: acked writes are already
            // WAL-durable, and waiting out straggler connections is
            // exactly what the operator just declined.
            std::_Exit(128 + again);
        }
    }
    drainer.join();
    std::cout << svc.stats().logLine() << "\n";
    std::cout << (clean ? "drained clean" : "drain deadline hit")
              << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace depgraph;

    Options o;
    o.declare("workers", "4", "worker threads");
    o.declare("queue", "128", "job queue capacity");
    o.declare("block", "false",
              "block producers when the queue is full (default: "
              "reject)");
    o.declare("batch", "64",
              "pending-edge threshold that triggers a batch flush");
    o.declare("solution", "DepGraph-H",
              "engine for queries' default and incremental passes");
    o.declare("cores", "16", "simulated cores");
    o.declare("numa", "auto",
              "NUMA placement when a query runs the native parallel "
              "engine: auto|off");
    o.declare("stats_ms", "0",
              "periodic stats log interval in ms (0 = off)");
    o.declare("metrics_ms", "0",
              "periodic registry publish interval in ms (0 = off; the "
              "'metrics' verb publishes on demand either way)");
    o.declare("trace", "false",
              "start with span tracing on (same as 'trace on')");
    o.declare("trace_sample", "0",
              "head-sample 1 in N requests into the trace ring "
              "(0 = off; client-supplied trace= ids are always kept)");
    o.declare("slow_ms", "0",
              "slow-query threshold in ms: requests over it are "
              "logged to the slowlog and trace-committed (0 = off)");
    o.declare("slowlog_cap", "256",
              "slow-query log ring capacity (entries)");
    o.declare("echo", "false", "echo each command before its reply");
    o.declare("listen", "-1",
              "TCP port to serve on (-1 = stdin mode; 0 = ephemeral, "
              "printed at startup)");
    o.declare("host", "127.0.0.1", "listen address for --listen");
    o.declare("dispatchers", "4",
              "network dispatcher threads (--listen mode)");
    o.declare("max_conns", "1024", "concurrent connection cap");
    o.declare("max_line", "8192", "protocol line length cap, bytes");
    o.declare("drain_ms", "5000",
              "graceful-drain deadline after SIGTERM/SIGINT");
    o.declare("admission_p99_us", "0",
              "shed query/update traffic when the windowed p99 queue "
              "wait exceeds this many microseconds (0 = off)");
    o.declare("retry_after_ms", "50",
              "backoff hint sent with err 429 sheds");
    o.declare("store_ttl_ms", "0",
              "evict graphs idle this long (0 = keep forever)");
    o.declare("store_max_graphs", "0",
              "LRU cap on named graphs (0 = unbounded)");
    o.declare("data_dir", "",
              "durability root: WAL + checkpoints live here and "
              "recovery replays them at startup (empty = no "
              "durability, the pre-WAL in-memory behavior)");
    o.declare("wal_sync", "batch",
              "WAL fsync policy: always (fsync per acked mutation), "
              "batch (group-commit at batch flushes), off");
    o.declare("checkpoint_every", "0",
              "checkpoint a graph every N applied batches (0 = only "
              "the `checkpoint` verb and recovery)");
    o.declare("recovery", "exact",
              "exact: drop checkpoint fixpoint caches when the WAL "
              "has mutations, so recovered queries are bitwise equal "
              "to a scratch recompute; fast: seed the caches and "
              "reconverge incrementally (epsilon-equal)");
    o.parse(argc, argv);

    const auto listen_port = o.getInt("listen");
    const auto drain_ms =
        std::chrono::milliseconds(o.getInt("drain_ms"));

    // Network mode handles signals synchronously via sigwait: block
    // them before any thread exists so every service/net thread
    // inherits the mask and delivery funnels to main.
    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGINT);
    sigaddset(&sigs, SIGTERM);
    if (listen_port >= 0)
        pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

    // Chaos harnesses arm crash sites before the process starts
    // serving: DG_FAILPOINTS="wal.after_append=exit(137)@25;..."
    if (const auto armed = failpoint::armFromEnv())
        std::cerr << "dgserve: " << armed
                  << " failpoint(s) armed from DG_FAILPOINTS\n";

    service::ServiceOptions sopt;
    sopt.pool.numThreads = static_cast<unsigned>(o.getInt("workers"));
    sopt.pool.queueCapacity =
        static_cast<std::size_t>(o.getInt("queue"));
    sopt.pool.blockWhenFull = o.getBool("block");
    sopt.batcher.maxPendingEdges =
        static_cast<std::size_t>(o.getInt("batch"));
    sopt.batcher.solution = solutionFromName(o.getString("solution"));
    sopt.system.machine.numCores =
        static_cast<unsigned>(o.getInt("cores"));
    sopt.system.engine.numCores = sopt.system.machine.numCores;
    {
        const auto numa = o.getString("numa");
        if (numa == "off")
            sopt.system.engine.numa = runtime::NumaMode::Off;
        else if (numa != "auto")
            dg_fatal("unknown --numa '", numa, "' (auto|off)");
    }
    sopt.statsLogInterval =
        std::chrono::milliseconds(o.getInt("stats_ms"));
    sopt.metricsPublishInterval =
        std::chrono::milliseconds(o.getInt("metrics_ms"));
    sopt.store.ttl =
        std::chrono::milliseconds(o.getInt("store_ttl_ms"));
    sopt.store.maxGraphs =
        static_cast<std::size_t>(o.getInt("store_max_graphs"));
    sopt.durability.dataDir = o.getString("data_dir");
    if (!durability::parseSyncPolicy(o.getString("wal_sync"),
                                     sopt.durability.sync)) {
        std::cerr << "dgserve: bad --wal_sync '"
                  << o.getString("wal_sync")
                  << "' (always|batch|off)\n";
        return 2;
    }
    sopt.durability.checkpointEveryBatches =
        static_cast<std::size_t>(o.getInt("checkpoint_every"));
    if (o.getString("recovery") == "fast") {
        sopt.durability.seedFixpointsOnReplay = true;
    } else if (o.getString("recovery") != "exact") {
        std::cerr << "dgserve: bad --recovery '"
                  << o.getString("recovery") << "' (exact|fast)\n";
        return 2;
    }
    if (o.getBool("trace"))
        obs::span::setEnabled(true);
    obs::span::setSampling(
        {static_cast<std::uint32_t>(o.getInt("trace_sample")),
         static_cast<std::uint64_t>(o.getInt("slow_ms")) * 1000});
    obs::slowLog().setCapacity(
        static_cast<std::size_t>(o.getInt("slowlog_cap")));

    service::GraphService svc(sopt);

    if (listen_port < 0) {
        reportRecovery(svc);
        return serveStdin(svc, o.getBool("echo"), drain_ms);
    }

    net::ServerOptions nopt;
    nopt.host = o.getString("host");
    nopt.port = static_cast<std::uint16_t>(listen_port);
    nopt.dispatchers =
        static_cast<unsigned>(o.getInt("dispatchers"));
    nopt.maxConnections =
        static_cast<std::size_t>(o.getInt("max_conns"));
    nopt.maxLineBytes =
        static_cast<std::size_t>(o.getInt("max_line"));
    nopt.admission.maxQueueWaitP99Micros =
        static_cast<std::uint64_t>(o.getInt("admission_p99_us"));
    nopt.admission.retryAfter =
        std::chrono::milliseconds(o.getInt("retry_after_ms"));
    return serveListen(svc, std::move(nopt), drain_ms, sigs);
}
