/**
 * @file
 * Streaming-update scenario: the "incremental pagerank" workload the
 * paper evaluates. A social graph receives batches of new follow
 * edges; after each batch the ranking is reconverged incrementally
 * (resume from the old fixpoint + exact delta injection) instead of
 * from scratch, and DepGraph-H processes the resulting sparse,
 * chain-bound propagation.
 *
 * Run: ./streaming_updates [--batches=4] [--batch_size=16]
 */

#include <iostream>

#include "common/options.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "core/depgraph_system.hh"
#include "gas/incremental.hh"
#include "gas/reference.hh"
#include "graph/generators.hh"

int
main(int argc, char **argv)
{
    using namespace depgraph;

    Options opt;
    opt.declare("batches", "4", "number of update batches");
    opt.declare("batch_size", "16", "edge insertions per batch");
    opt.declare("cores", "16", "simulated cores");
    opt.parse(argc, argv);

    graph::Graph g = graph::powerLaw(8000, 2.0, 10.0, {.seed = 77});
    std::cout << "initial graph: " << g.numVertices() << " users, "
              << g.numEdges() << " follows\n\n";

    SystemConfig cfg;
    cfg.machine.numCores = static_cast<unsigned>(opt.getInt("cores"));
    cfg.engine.numCores = cfg.machine.numCores;
    DepGraphSystem sys(cfg);

    // Converge the initial ranking once.
    auto base_alg = gas::makeAlgorithm("pagerank");
    auto states = gas::runReference(g, *base_alg).states;

    Rng rng(78);
    Table t({"batch", "new_edges", "inc_updates", "scratch_updates",
             "savings", "max_state_err"});
    for (int batch = 1; batch <= opt.getInt("batches"); ++batch) {
        // A batch of new follow edges, biased toward popular users.
        std::vector<gas::EdgeInsertion> ins;
        for (int k = 0; k < opt.getInt("batch_size"); ++k) {
            const auto s = static_cast<VertexId>(
                rng.nextBounded(g.numVertices()));
            auto d = static_cast<VertexId>(
                rng.nextBounded(g.numVertices()));
            if (d == s)
                d = (d + 1) % g.numVertices();
            ins.push_back({s, d, 1.0});
        }
        const auto updated = gas::applyInsertions(g, ins);

        // Incremental reconvergence through DepGraph-H.
        auto alg_inc = gas::makeAlgorithm("pagerank");
        const auto deltas = gas::edgeInsertionDeltas(
            g, updated, ins, states, *alg_inc);
        gas::ResumeAlgorithm resume(*alg_inc, states, deltas);
        const auto inc =
            sys.run(updated, resume, Solution::DepGraphH);

        // From-scratch comparison (and gold states).
        auto alg_scratch = gas::makeAlgorithm("pagerank");
        const auto scratch =
            sys.run(updated, *alg_scratch, Solution::DepGraphH);

        double err = 0.0;
        for (std::size_t v = 0; v < inc.states.size(); ++v)
            err = std::max(err,
                           std::abs(inc.states[v]
                                    - scratch.states[v]));

        t.addRow({Table::fmt(std::uint64_t(batch)),
                  Table::fmt(std::uint64_t{ins.size()}),
                  Table::fmt(inc.metrics.updates),
                  Table::fmt(scratch.metrics.updates),
                  Table::fmt(100.0
                                 * (1.0
                                    - static_cast<double>(
                                          inc.metrics.updates)
                                        / static_cast<double>(
                                            scratch.metrics.updates)),
                             1) + "%",
                  Table::fmt(err, 6)});

        g = updated;
        states = inc.states;
    }
    t.print();
    std::cout << "\nincremental reconvergence tracks the from-scratch "
                 "ranking while doing a fraction of the updates.\n";
    return 0;
}
