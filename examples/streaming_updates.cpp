/**
 * @file
 * Streaming-churn scenario: the "incremental pagerank" workload the
 * paper evaluates, over a stream that both FOLLOWS and UNFOLLOWS --
 * shown through BOTH entry points:
 *
 *  1. the direct library path -- per batch, call gas::applyChurn +
 *     gas::edgeChurnDeltas + ResumeAlgorithm and run DepGraph-H
 *     yourself;
 *  2. the serving path -- stream the same insertions and deletions one
 *     request at a time into a GraphService, whose UpdateBatcher
 *     coalesces them and applies ONE incremental reconvergence per
 *     batch flush.
 *
 * Both must land on the same fixpoint (asserted at the end), but the
 * service turns N churn requests into a handful of reconvergence
 * passes -- check the `batches` vs `update requests` stats line.
 *
 * Run: ./streaming_updates [--batches=4] [--batch_size=16]
 */

#include <iostream>

#include "common/logging.hh"
#include "common/options.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "core/depgraph_system.hh"
#include "gas/incremental.hh"
#include "gas/reference.hh"
#include "graph/generators.hh"
#include "service/service.hh"

namespace
{

using namespace depgraph;

/** The follow-edges of one update batch; deterministic per batch so
 * both paths replay the identical stream. */
std::vector<gas::EdgeInsertion>
batchEdges(const graph::Graph &g, int batch, int batch_size)
{
    Rng rng(78 + static_cast<std::uint64_t>(batch));
    std::vector<gas::EdgeInsertion> ins;
    for (int k = 0; k < batch_size; ++k) {
        const auto s =
            static_cast<VertexId>(rng.nextBounded(g.numVertices()));
        auto d =
            static_cast<VertexId>(rng.nextBounded(g.numVertices()));
        if (d == s)
            d = (d + 1) % g.numVertices();
        ins.push_back({s, d, 1.0});
    }
    return ins;
}

/** The unfollow-edges of one batch: existing follows of the ORIGINAL
 * graph, picked deterministically. A pair whose edge was already
 * unfollowed in an earlier batch is simply a no-op -- identically on
 * both paths. */
std::vector<gas::EdgeDeletion>
batchDeletions(const graph::Graph &g, int batch, int count)
{
    Rng rng(5100 + static_cast<std::uint64_t>(batch));
    std::vector<gas::EdgeDeletion> dels;
    while (static_cast<int>(dels.size()) < count) {
        const auto s =
            static_cast<VertexId>(rng.nextBounded(g.numVertices()));
        if (g.outDegree(s) == 0)
            continue;
        const EdgeId e = g.edgeBegin(s)
            + static_cast<EdgeId>(rng.nextBounded(g.outDegree(s)));
        dels.push_back({s, g.target(e)}); // any-weight deletion
    }
    return dels;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    opt.declare("batches", "4", "number of update batches");
    opt.declare("batch_size", "16", "edge insertions per batch");
    opt.declare("cores", "16", "simulated cores");
    opt.parse(argc, argv);
    const int batches = static_cast<int>(opt.getInt("batches"));
    const int batch_size = static_cast<int>(opt.getInt("batch_size"));
    const int dels_per_batch = std::max(1, batch_size / 4);

    const graph::Graph initial =
        graph::powerLaw(8000, 2.0, 10.0, {.seed = 77});
    std::cout << "initial graph: " << initial.numVertices()
              << " users, " << initial.numEdges() << " follows\n\n";

    SystemConfig cfg;
    cfg.machine.numCores = static_cast<unsigned>(opt.getInt("cores"));
    cfg.engine.numCores = cfg.machine.numCores;

    /* ---- Path 1: direct incremental calls, one per batch. -------- */

    DepGraphSystem sys(cfg);
    graph::Graph g = initial;
    auto base_alg = gas::makeAlgorithm("pagerank");
    auto states = gas::runReference(g, *base_alg).states;

    Table t({"batch", "ins", "dels", "inc_updates", "scratch_updates",
             "savings", "max_state_err"});
    for (int batch = 1; batch <= batches; ++batch) {
        const auto ins = batchEdges(initial, batch, batch_size);
        const auto dels =
            batchDeletions(initial, batch, dels_per_batch);
        const auto updated = gas::applyChurn(g, ins, dels);

        // Incremental reconvergence through DepGraph-H. For pagerank
        // (a sum accumulator) the deleted follows' historical mass is
        // retracted exactly; edgeChurnDeltas leaves `states` as the
        // valid resume point.
        auto alg_inc = gas::makeAlgorithm("pagerank");
        auto resumed = states;
        const auto deltas = gas::edgeChurnDeltas(
            g, updated, ins, dels, resumed, *alg_inc);
        gas::ResumeAlgorithm resume(*alg_inc, std::move(resumed),
                                    deltas);
        const auto inc = sys.run(updated, resume, Solution::DepGraphH);

        // From-scratch comparison (and gold states).
        auto alg_scratch = gas::makeAlgorithm("pagerank");
        const auto scratch =
            sys.run(updated, *alg_scratch, Solution::DepGraphH);

        double err = 0.0;
        for (std::size_t v = 0; v < inc.states.size(); ++v)
            err = std::max(
                err, std::abs(inc.states[v] - scratch.states[v]));

        t.addRow({Table::fmt(std::uint64_t(batch)),
                  Table::fmt(std::uint64_t{ins.size()}),
                  Table::fmt(std::uint64_t{dels.size()}),
                  Table::fmt(inc.metrics.updates),
                  Table::fmt(scratch.metrics.updates),
                  Table::fmt(100.0
                                 * (1.0
                                    - static_cast<double>(
                                          inc.metrics.updates)
                                        / static_cast<double>(
                                            scratch.metrics.updates)),
                             1) + "%",
                  Table::fmt(err, 6)});

        g = updated;
        states = inc.states;
    }
    t.print();
    std::cout << "\nincremental reconvergence tracks the from-scratch "
                 "ranking while doing a fraction of the updates.\n\n";

    /* ---- Path 2: the same stream through the serving layer. ------ */

    service::ServiceOptions sopt;
    sopt.system = cfg;
    sopt.pool.numThreads = 2;
    sopt.pool.blockWhenFull = true;
    // Coalesce one example batch per flush; follows and unfollows
    // arrive ONE request at a time, as a real stream would.
    sopt.batcher.maxPendingEdges =
        static_cast<std::size_t>(batch_size + dels_per_batch);
    sopt.batcher.solution = Solution::DepGraphH;
    service::GraphService svc(sopt);
    svc.loadGraph("social", initial);

    service::Session session(svc, "social", "pagerank",
                             Solution::DepGraphH);
    auto first = session.query(); // converge + cache the base ranking
    dg_assert(first.ok(), "initial service query failed");

    for (int batch = 1; batch <= batches; ++batch) {
        for (const auto &e : batchEdges(initial, batch, batch_size))
            dg_assert(session.update(e.src, e.dst, e.weight).ok(),
                      "update request failed");
        for (const auto &d :
             batchDeletions(initial, batch, dels_per_batch))
            dg_assert(session.erase(d.src, d.dst).ok(),
                      "delete request failed");
    }
    svc.drain(); // apply whatever is still below the flush threshold

    const auto served = session.query();
    dg_assert(served.ok() && served.cacheHit,
              "final ranking should be served from the fixpoint cache");

    const auto st = svc.stats();
    std::cout << "service path: " << st.updateRequests
              << " churn requests (" << st.updateDeletionsEnqueued
              << " deletions) coalesced into " << st.batchesApplied
              << " batches / " << st.incrementalPasses
              << " incremental reconvergence passes\n";

    const auto err =
        gas::maxStateDifference(*served.states, states);
    std::cout << "max state difference service vs direct: " << err
              << "\n";
    dg_assert(err <= 1e-2,
              "service and direct paths diverged: ", err);
    std::cout << "both paths reach the same fixpoint; the service did "
                 "it behind a thread pool with batched churn.\n";
    return 0;
}
