/**
 * @file
 * Streaming-update scenario: the "incremental pagerank" workload the
 * paper evaluates, shown through BOTH entry points:
 *
 *  1. the direct library path -- per batch, call
 *     gas::edgeInsertionDeltas + ResumeAlgorithm and run DepGraph-H
 *     yourself;
 *  2. the serving path -- stream the same edges one request at a time
 *     into a GraphService, whose UpdateBatcher coalesces them and
 *     applies ONE incremental reconvergence per batch flush.
 *
 * Both must land on the same fixpoint (asserted at the end), but the
 * service turns N update requests into a handful of reconvergence
 * passes -- check the `batches` vs `update requests` stats line.
 *
 * Run: ./streaming_updates [--batches=4] [--batch_size=16]
 */

#include <iostream>

#include "common/logging.hh"
#include "common/options.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "core/depgraph_system.hh"
#include "gas/incremental.hh"
#include "gas/reference.hh"
#include "graph/generators.hh"
#include "service/service.hh"

namespace
{

using namespace depgraph;

/** The follow-edges of one update batch; deterministic per batch so
 * both paths replay the identical stream. */
std::vector<gas::EdgeInsertion>
batchEdges(const graph::Graph &g, int batch, int batch_size)
{
    Rng rng(78 + static_cast<std::uint64_t>(batch));
    std::vector<gas::EdgeInsertion> ins;
    for (int k = 0; k < batch_size; ++k) {
        const auto s =
            static_cast<VertexId>(rng.nextBounded(g.numVertices()));
        auto d =
            static_cast<VertexId>(rng.nextBounded(g.numVertices()));
        if (d == s)
            d = (d + 1) % g.numVertices();
        ins.push_back({s, d, 1.0});
    }
    return ins;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    opt.declare("batches", "4", "number of update batches");
    opt.declare("batch_size", "16", "edge insertions per batch");
    opt.declare("cores", "16", "simulated cores");
    opt.parse(argc, argv);
    const int batches = static_cast<int>(opt.getInt("batches"));
    const int batch_size = static_cast<int>(opt.getInt("batch_size"));

    const graph::Graph initial =
        graph::powerLaw(8000, 2.0, 10.0, {.seed = 77});
    std::cout << "initial graph: " << initial.numVertices()
              << " users, " << initial.numEdges() << " follows\n\n";

    SystemConfig cfg;
    cfg.machine.numCores = static_cast<unsigned>(opt.getInt("cores"));
    cfg.engine.numCores = cfg.machine.numCores;

    /* ---- Path 1: direct incremental calls, one per batch. -------- */

    DepGraphSystem sys(cfg);
    graph::Graph g = initial;
    auto base_alg = gas::makeAlgorithm("pagerank");
    auto states = gas::runReference(g, *base_alg).states;

    Table t({"batch", "new_edges", "inc_updates", "scratch_updates",
             "savings", "max_state_err"});
    for (int batch = 1; batch <= batches; ++batch) {
        const auto ins = batchEdges(initial, batch, batch_size);
        const auto updated = gas::applyInsertions(g, ins);

        // Incremental reconvergence through DepGraph-H.
        auto alg_inc = gas::makeAlgorithm("pagerank");
        const auto deltas = gas::edgeInsertionDeltas(
            g, updated, ins, states, *alg_inc);
        gas::ResumeAlgorithm resume(*alg_inc, states, deltas);
        const auto inc = sys.run(updated, resume, Solution::DepGraphH);

        // From-scratch comparison (and gold states).
        auto alg_scratch = gas::makeAlgorithm("pagerank");
        const auto scratch =
            sys.run(updated, *alg_scratch, Solution::DepGraphH);

        double err = 0.0;
        for (std::size_t v = 0; v < inc.states.size(); ++v)
            err = std::max(
                err, std::abs(inc.states[v] - scratch.states[v]));

        t.addRow({Table::fmt(std::uint64_t(batch)),
                  Table::fmt(std::uint64_t{ins.size()}),
                  Table::fmt(inc.metrics.updates),
                  Table::fmt(scratch.metrics.updates),
                  Table::fmt(100.0
                                 * (1.0
                                    - static_cast<double>(
                                          inc.metrics.updates)
                                        / static_cast<double>(
                                            scratch.metrics.updates)),
                             1) + "%",
                  Table::fmt(err, 6)});

        g = updated;
        states = inc.states;
    }
    t.print();
    std::cout << "\nincremental reconvergence tracks the from-scratch "
                 "ranking while doing a fraction of the updates.\n\n";

    /* ---- Path 2: the same stream through the serving layer. ------ */

    service::ServiceOptions sopt;
    sopt.system = cfg;
    sopt.pool.numThreads = 2;
    sopt.pool.blockWhenFull = true;
    // Coalesce one example batch per flush; edges arrive ONE request
    // at a time, as a real follower stream would.
    sopt.batcher.maxPendingEdges =
        static_cast<std::size_t>(batch_size);
    sopt.batcher.solution = Solution::DepGraphH;
    service::GraphService svc(sopt);
    svc.loadGraph("social", initial);

    service::Session session(svc, "social", "pagerank",
                             Solution::DepGraphH);
    auto first = session.query(); // converge + cache the base ranking
    dg_assert(first.ok(), "initial service query failed");

    for (int batch = 1; batch <= batches; ++batch)
        for (const auto &e : batchEdges(initial, batch, batch_size))
            dg_assert(session.update(e.src, e.dst, e.weight).ok(),
                      "update request failed");
    svc.drain(); // apply whatever is still below the flush threshold

    const auto served = session.query();
    dg_assert(served.ok() && served.cacheHit,
              "final ranking should be served from the fixpoint cache");

    const auto st = svc.stats();
    std::cout << "service path: " << st.updateRequests
              << " update requests coalesced into "
              << st.batchesApplied << " batches / "
              << st.incrementalPasses
              << " incremental reconvergence passes\n";

    const auto err =
        gas::maxStateDifference(*served.states, states);
    std::cout << "max state difference service vs direct: " << err
              << "\n";
    dg_assert(err <= 1e-2,
              "service and direct paths diverged: ", err);
    std::cout << "both paths reach the same fixpoint; the service did "
                 "it behind a thread pool with batched updates.\n";
    return 0;
}
