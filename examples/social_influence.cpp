/**
 * @file
 * Social-influence scenario: incremental pagerank on a social-network
 * stand-in (com-Orkut class), the workload the paper's introduction
 * motivates ("pinpointing influencers in social graphs").
 *
 * Compares the optimized software baseline (Ligra-o) against
 * DepGraph-H end to end, prints the speedup, the update reduction, and
 * the top influencers, and verifies both solutions agree.
 *
 * Run: ./social_influence [--scale=0.5] [--cores=16]
 */

#include <algorithm>
#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "core/depgraph_system.hh"
#include "graph/datasets.hh"

int
main(int argc, char **argv)
{
    using namespace depgraph;

    Options opt;
    opt.declare("scale", "0.25", "dataset scale factor");
    opt.declare("cores", "16", "simulated cores");
    opt.parse(argc, argv);

    const auto g = graph::makeDataset("OK", opt.getDouble("scale"));
    std::cout << "social graph (com-Orkut stand-in): "
              << g.numVertices() << " users, " << g.numEdges()
              << " follow edges\n\n";

    SystemConfig cfg;
    cfg.machine.numCores = static_cast<unsigned>(opt.getInt("cores"));
    cfg.engine.numCores = cfg.machine.numCores;
    DepGraphSystem sys(cfg);

    const auto base = sys.run(g, "pagerank", Solution::LigraO);
    const auto dg = sys.run(g, "pagerank", Solution::DepGraphH);

    Table t({"solution", "cycles", "updates", "rounds", "energy(mJ)"});
    for (const auto *p : {&base, &dg}) {
        t.addRow({p == &base ? "Ligra-o" : "DepGraph-H",
                  Table::fmt(p->metrics.makespan),
                  Table::fmt(p->metrics.updates),
                  Table::fmt(std::uint64_t{p->metrics.rounds}),
                  Table::fmt(p->energy.totalMj(), 2)});
    }
    t.print();

    const double speedup = static_cast<double>(base.metrics.makespan)
        / static_cast<double>(dg.metrics.makespan);
    const double fewer = 100.0
        * (1.0
           - static_cast<double>(dg.metrics.updates)
               / static_cast<double>(base.metrics.updates));
    std::cout << "\nDepGraph-H speedup over Ligra-o: "
              << Table::fmt(speedup, 2) << "x, updates reduced by "
              << Table::fmt(fewer, 1) << "%\n";

    // Agreement check between the two solutions.
    double worst = 0.0;
    for (std::size_t v = 0; v < dg.states.size(); ++v)
        worst = std::max(worst,
                         std::abs(dg.states[v] - base.states[v]));
    std::cout << "max |state difference| between solutions: " << worst
              << "\n\ntop influencers (by pagerank):\n";

    std::vector<VertexId> order(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        order[v] = v;
    std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
        return dg.states[a] > dg.states[b];
    });
    for (int i = 0; i < 5; ++i) {
        std::cout << "  #" << (i + 1) << "  user " << order[i]
                  << "  score " << Table::fmt(dg.states[order[i]], 4)
                  << "  followers " << g.inDegree(order[i]) << "\n";
    }
    return 0;
}
