/**
 * @file
 * Community / label-spreading scenario on a high-diameter graph
 * (com-Amazon class): weakly connected components plus adsorption
 * label propagation -- the two remaining algorithms of the paper's
 * evaluation quartet. High-diameter graphs have the longest
 * dependency chains (Table III: d = 44), which is where chain-
 * following and the hub index shine; this example prints the
 * round-count collapse DepGraph achieves against the baselines.
 *
 * Run: ./community_labels [--scale=0.5] [--cores=16]
 */

#include <iostream>
#include <map>

#include "common/options.hh"
#include "common/table.hh"
#include "core/depgraph_system.hh"
#include "graph/datasets.hh"
#include "graph/degree.hh"

int
main(int argc, char **argv)
{
    using namespace depgraph;

    Options opt;
    opt.declare("scale", "0.25", "dataset scale factor");
    opt.declare("cores", "16", "simulated cores");
    opt.parse(argc, argv);

    const auto g = graph::makeDataset("AZ", opt.getDouble("scale"));
    std::cout << "product graph (com-Amazon stand-in): "
              << g.numVertices() << " products, " << g.numEdges()
              << " co-purchase edges, diameter ~"
              << graph::estimateDiameter(g, 6) << "\n\n";

    SystemConfig cfg;
    cfg.machine.numCores = static_cast<unsigned>(opt.getInt("cores"));
    cfg.engine.numCores = cfg.machine.numCores;
    DepGraphSystem sys(cfg);

    Table t({"solution", "algorithm", "cycles", "rounds", "updates"});
    runtime::RunResult wcc_result;
    for (const auto *algo : {"wcc", "adsorption"}) {
        for (auto s : {Solution::Ligra, Solution::LigraO,
                       Solution::DepGraphH}) {
            const auto r = sys.run(g, algo, s);
            if (std::string(algo) == "wcc"
                && s == Solution::DepGraphH)
                wcc_result = r;
            t.addRow({solutionName(s), algo,
                      Table::fmt(r.metrics.makespan),
                      Table::fmt(std::uint64_t{r.metrics.rounds}),
                      Table::fmt(r.metrics.updates)});
        }
    }
    t.print();

    // Count component labels from the WCC run.
    std::map<Value, std::size_t> labels;
    for (auto s : wcc_result.states)
        ++labels[s];
    std::cout << "\nconnected structures found: " << labels.size()
              << " (largest has "
              << std::max_element(labels.begin(), labels.end(),
                                  [](const auto &a, const auto &b) {
                                      return a.second < b.second;
                                  })
                     ->second
              << " products)\n";
    return 0;
}
