/**
 * @file
 * Programming-model demo: driving the DepGraph engine through the
 * paper's low-level API the way a graph processing system would
 * (Sec. III-B2). The "software" below owns the vertex states and the
 * user-defined EdgeCompute/Accum; the engine owns traversal and
 * prefetch. Together they compute SSSP asynchronously along
 * dependency chains.
 *
 * Run: ./engine_api
 */

#include <iostream>

#include "depgraph/api.hh"
#include "gas/algorithms.hh"
#include "graph/builder.hh"

int
main()
{
    using namespace depgraph;

    // The example graph from the paper's Fig. 3 flavour: chains
    // hanging off a few well-connected vertices.
    graph::Builder b(8);
    b.addEdge(0, 1, 1.0);
    b.addEdge(1, 2, 2.0);
    b.addEdge(2, 3, 1.0);
    b.addEdge(0, 4, 4.0);
    b.addEdge(4, 5, 1.0);
    b.addEdge(5, 3, 1.0);
    b.addEdge(3, 6, 2.0);
    b.addEdge(6, 7, 1.0);
    const graph::Graph g = b.build();

    // --- software side: states + user functions -------------------
    gas::Sssp sssp(0);
    std::vector<Value> dist(g.numVertices(), kInfinity);
    dist[0] = 0.0;

    // --- engine side: DEP_configure + root insertion ---------------
    dep::DepEngine engine;
    dep::DepConfig cfg;
    cfg.graph = &g;
    cfg.partitionBegin = 0;
    cfg.partitionEnd = g.numVertices();
    cfg.stackDepth = 10;
    engine.DEP_configure(cfg);
    engine.DEP_insert_root(0);

    // --- the processing loop the paper describes -------------------
    // The engine prefetches edges along dependency chains; the core
    // applies EdgeCompute + Accum to each fetched edge. Re-rooting on
    // improvement keeps chains flowing until convergence.
    std::uint64_t edge_ops = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        while (const auto f = engine.DEP_fetch_edge()) {
            ++edge_ops;
            const Value cand =
                sssp.edgeCompute(g, f->src, f->edge, dist[f->src]);
            if (cand < dist[f->dst]) {
                dist[f->dst] = cand;
                changed = true;
                // A cut tail (or any improved vertex) becomes a new
                // root so its chain is walked with the fresh value.
                engine.DEP_insert_root(f->dst);
            }
        }
        if (changed)
            engine.DEP_insert_root(0);
    }

    std::cout << "distances computed through DEP_fetch_edge():\n";
    for (VertexId v = 0; v < g.numVertices(); ++v)
        std::cout << "  v" << v << " -> " << dist[v] << "\n";
    std::cout << "\nengine stats: " << engine.prefetchedEdges()
              << " edges prefetched across " << engine.traversals()
              << " traversals (" << edge_ops << " edge ops)\n";
    return 0;
}
