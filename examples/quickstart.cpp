/**
 * @file
 * Quickstart: build a small weighted graph, run SSSP under DepGraph-H,
 * and inspect results + metrics. This is the 60-second tour of the
 * public API (graph::Builder, DepGraphSystem, Solution, RunResult).
 *
 * Run: ./quickstart
 */

#include <iostream>

#include "core/depgraph_system.hh"
#include "graph/builder.hh"

int
main()
{
    using namespace depgraph;

    // 1. Build a graph (or load one: graph::loadEdgeListText, or
    //    generate one: graph::powerLaw / graph::makeDataset).
    graph::Builder b(6);
    b.addEdge(0, 1, 2.0);
    b.addEdge(0, 2, 5.0);
    b.addEdge(1, 2, 1.0);
    b.addEdge(1, 3, 6.0);
    b.addEdge(2, 3, 2.0);
    b.addEdge(2, 4, 4.0);
    b.addEdge(3, 5, 1.0);
    b.addEdge(4, 5, 3.0);
    const graph::Graph g = b.build();

    // 2. Configure the simulated machine (defaults = the paper's
    //    64-core Table II system; shrink it for this toy example).
    SystemConfig cfg;
    cfg.machine.numCores = 4;
    cfg.machine.l3TotalBytes = 4 * 1024 * 1024;
    cfg.machine.l3Banks = 4;
    cfg.engine.numCores = 4;

    // 3. Run an algorithm under a solution.
    DepGraphSystem sys(cfg);
    const auto r = sys.run(g, "sssp", Solution::DepGraphH);

    // 4. Inspect converged states and metrics.
    std::cout << "shortest distances from vertex 0:\n";
    for (VertexId v = 0; v < g.numVertices(); ++v)
        std::cout << "  v" << v << " -> " << r.states[v] << "\n";

    std::cout << "\nrun metrics:\n"
              << "  converged:  " << (r.metrics.converged ? "yes"
                                                          : "no")
              << "\n  rounds:     " << r.metrics.rounds
              << "\n  updates:    " << r.metrics.updates
              << "\n  edge ops:   " << r.metrics.edgeOps
              << "\n  makespan:   " << r.metrics.makespan << " cycles"
              << "\n  energy:     " << r.energy.totalMj() << " mJ\n";
    return 0;
}
