/**
 * @file
 * Road-navigation scenario: single-source shortest paths (and widest
 * paths) on a mesh-like road network. Mesh graphs have no degree skew,
 * so the hub index finds little to exploit -- this example exercises
 * the paper's Sec. IV-A remark that DepGraph-H still helps through
 * dependency-driven prefetching alone (DepGraph-H-w), and demonstrates
 * the SSWP algorithm (widest route = maximum legal truck weight).
 *
 * Run: ./road_navigation [--rows=48] [--cols=48] [--cores=16]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "core/depgraph_system.hh"
#include "graph/generators.hh"

int
main(int argc, char **argv)
{
    using namespace depgraph;

    Options opt;
    opt.declare("rows", "48", "grid rows");
    opt.declare("cols", "48", "grid cols");
    opt.declare("cores", "16", "simulated cores");
    opt.parse(argc, argv);

    graph::GenOptions gen;
    gen.seed = 7;
    gen.minWeight = 1.0;
    gen.maxWeight = 10.0;
    const auto rows = static_cast<VertexId>(opt.getInt("rows"));
    const auto cols = static_cast<VertexId>(opt.getInt("cols"));
    const auto g = graph::grid(rows, cols, gen);
    std::cout << "road network: " << rows << "x" << cols
              << " intersections, " << g.numEdges()
              << " road segments\n\n";

    SystemConfig cfg;
    cfg.machine.numCores = static_cast<unsigned>(opt.getInt("cores"));
    cfg.engine.numCores = cfg.machine.numCores;
    DepGraphSystem sys(cfg);

    Table t({"solution", "algorithm", "cycles", "updates", "rounds"});
    for (const auto *algo : {"sssp", "sswp"}) {
        for (auto s : {Solution::LigraO, Solution::DepGraphHNoHub,
                       Solution::DepGraphH}) {
            const auto r = sys.run(g, algo, s);
            t.addRow({solutionName(s), algo,
                      Table::fmt(r.metrics.makespan),
                      Table::fmt(r.metrics.updates),
                      Table::fmt(std::uint64_t{r.metrics.rounds})});
        }
    }
    t.print();

    // Route report: distance and widest capacity to the far corner.
    const VertexId far = rows * cols - 1;
    const auto dist = sys.run(g, "sssp", Solution::DepGraphH);
    const auto wide = sys.run(g, "sswp", Solution::DepGraphH);
    std::cout << "\nfrom intersection 0 to " << far << ":\n"
              << "  shortest travel cost: " << dist.states[far] << "\n"
              << "  widest route capacity: " << wide.states[far]
              << " tons\n";
    return 0;
}
